(* The compiler driver: parse, check, lower, profile, transform, run, and
   simulate mini-C programs.

   Examples:
     mrvcc dump-ir prog.c                  # lowered IR
     mrvcc run prog.c --in 1,2,3           # sequential execution
     mrvcc profile prog.c --in 1,2,3       # loop + dependence profile
     mrvcc compile prog.c --in 1,2,3       # show regions and sync insertion
     mrvcc lint prog.c --in 1,2,3          # static sync-placement checks
     mrvcc lint                            # lint every bundled benchmark
     mrvcc simulate prog.c --in 1,2,3 --mode C   # TLS simulation
     mrvcc simulate --bench parser --mode H      # a bundled benchmark
     mrvcc simulate --bench mcf --sync-sched     # with the sync scheduler
     mrvcc simulate --bench mcf --engine ref     # cycle-stepped oracle engine
     mrvcc simulate --bench mcf --icode off      # boxed-IR event dispatcher
     mrvcc analyze --bench mcf                   # static stall + violation model
     mrvcc analyze --bench mcf --validate        # ... checked against the sim
     mrvcc analyze --bench mcf --json            # machine-readable estimates
     mrvcc simulate --bench parser --mutate drop-wait  # fault injection
     mrvcc chaos --bench all                     # full resilience matrix
     mrvcc chaos --bench all --jobs 4            # same matrix, 4 domains
     mrvcc chaos --fuzz 20 --seed 7              # chaos-fuzz generated programs
     mrvcc chaos --bench all --capacity          # finite-resource sweep
     mrvcc bench --json --out BENCH_PR9.json     # machine-readable baseline
     mrvcc bench --bench mcf --json              # one workload, to stdout
     mrvcc exec --bench parser --domains 4       # real TLS run on domains
     mrvcc exec --bench go --mode U --record r.jsonl   # record a racy run
     mrvcc exec --bench go --mode U --replay r.jsonl   # reproduce it serially
     mrvcc exec --bench mcf --inject crash:1     # runtime fault injection
     mrvcc chaos --exec --bench mcf,parser       # runtime-fault matrix
     mrvcc serve requests.jsonl                  # compile service, JSONL in/out
     mrvcc serve requests.jsonl --cache-dir .cache --deadline 5 --retries 2
     mrvcc chaos --serve --bench twolf,ijpeg     # service-layer fault matrix
     mrvcc bench --json --serve --out B.json     # + serve load phases
     mrvcc benchdiff BENCH_PR10.json fresh.json  # perf-regression gate
     mrvcc benchdiff old.json new.json --tolerance 0.3

   `--jobs N` runs independent matrix cells on N domains; the rendered
   output is byte-identical to a serial run.  `--timeout S` (with
   optional `--retry`) bounds each matrix job's wall time.  `--max-cycles
   N` tightens the simulator cycle budget uniformly across every cell.
   `simulate` takes the finite-resource knobs `--sig-buffer N`,
   `--spec-lines N` (with `--overflow-policy stall|squash`) and
   `--fwd-queue N` (DESIGN §12), plus `--engine ref|event` to pick the
   simulator core (DESIGN §15; both engines are byte-identical, `event`
   is the default and the fast one) and `--icode on|off` to toggle the
   flat instruction encoding the event engine dispatches on (DESIGN
   §17).  `benchdiff OLD NEW` compares two bench baselines: exact
   equality on deterministic counters, `--tolerance`-bounded growth on
   per-phase wall geomeans; exit 1 on regression.

   Exit codes: 0 success; 1 findings / failed cells / output mismatch;
   2 usage error; 3 simulator deadlock; 4 simulator stuck (watchdog or
   protocol check); 5 cycle/step budget exhausted; 6 malformed sequential
   execution (reserved: sequential hooks cannot block today, see README);
   7 resource deadlock (finite forwarding queue backpressured a producer
   into a cycle); 8 serve admission queue shed at least one request;
   9 a wall deadline was exceeded (serve request past its retry
   schedule, or a matrix job past --timeout); 10 the speculative runtime
   wedged (exec wall-clock watchdog fired, typed Specrt_stuck); 11 an
   epoch exhausted its abort budget under exec (typed Abort_exhausted). *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let parse_input_list s =
  if String.equal s "" then [||]
  else
    String.split_on_char ',' s
    |> List.map (fun x -> int_of_string (String.trim x))
    |> Array.of_list

(* Resolve source and input from either a file or a bundled benchmark. *)
let resolve_program file bench input =
  match bench, file with
  | Some name, _ -> begin
    match Workloads.Registry.find name with
    | Some w ->
      let input =
        match input with
        | Some s -> parse_input_list s
        | None -> w.Workloads.Workload.ref_input
      in
      (w.Workloads.Workload.source, input)
    | None ->
      Printf.eprintf "unknown benchmark %s (have: %s)\n" name
        (String.concat ", " Workloads.Registry.names);
      exit 2
  end
  | None, Some path ->
    let input =
      match input with Some s -> parse_input_list s | None -> [||]
    in
    (read_file path, input)
  | None, None ->
    prerr_endline "need a source file or --bench";
    exit 2

let with_errors f =
  try f () with
  | Lang.Lexer.Error (msg, pos) ->
    Printf.eprintf "lex error at %d:%d: %s\n" pos.Lang.Token.line
      pos.Lang.Token.col msg;
    exit 1
  | Lang.Parser.Error (msg, pos) ->
    Printf.eprintf "parse error at %d:%d: %s\n" pos.Lang.Token.line
      pos.Lang.Token.col msg;
    exit 1
  | Lang.Sema.Error (msg, pos) ->
    Printf.eprintf "type error at %d:%d: %s\n" pos.Lang.Token.line
      pos.Lang.Token.col msg;
    exit 1

(* Map the typed runtime/simulator errors to distinct exit codes with
   one-line messages, so scripts can tell a hang from a protocol bug. *)
let guarded f =
  try f () with
  | Tls.Sim.Deadlock msg ->
    Printf.eprintf "deadlock: %s\n" msg;
    exit 3
  | Tls.Sim.Stuck d ->
    Printf.eprintf "stuck: %s\n" (Tls.Sim.describe_stuck d);
    exit 4
  | Tls.Sim.Cycle_limit { max_cycles; cycle; where } ->
    Printf.eprintf "cycle budget exhausted: %s hit %d cycles (limit %d)\n"
      where cycle max_cycles;
    exit 5
  | Runtime.Thread.Step_limit { max_steps; icount } ->
    Printf.eprintf
      "step budget exhausted: %d instructions executed (limit %d)\n" icount
      max_steps;
    exit 5
  | Profiler.Runner.Step_limit { max_steps; icount } ->
    Printf.eprintf
      "profiling step budget exhausted: %d instructions executed (limit %d)\n"
      icount max_steps;
    exit 5
  | Runtime.Thread.Unexpected_stop { reason; icount } ->
    Printf.eprintf "sequential thread %s after %d instructions\n" reason icount;
    exit 6
  | Profiler.Runner.Unexpected_stop { reason; icount } ->
    Printf.eprintf "profiled thread %s after %d instructions\n" reason icount;
    exit 6
  | Tls.Sim.Resource_deadlock d ->
    Printf.eprintf "resource deadlock: %s\n"
      (Tls.Sim.describe_resource_deadlock d);
    exit 7
  | Harness.Jobs.Job_timeout { index; timeout_s } ->
    Printf.eprintf "job %d exceeded its %.3fs wall deadline\n" index timeout_s;
    exit 9
  | Harness.Jobs.Retries_exhausted { index; attempts } ->
    Printf.eprintf "job %d exhausted its retry budget (%d attempts)\n" index
      (List.length attempts);
    exit 9
  | Specrt.Exec_deadlock msg ->
    Printf.eprintf "exec deadlock: %s\n" msg;
    exit 3
  | Specrt.Specrt_stuck { watchdog_ms; detail } ->
    Printf.eprintf "exec stuck: no progress for %d ms: %s\n" watchdog_ms detail;
    exit 10
  | Specrt.Abort_exhausted { instance; index; aborts; max_aborts } ->
    Printf.eprintf
      "exec abort budget exhausted: instance %d epoch %d squashed %d times \
       (budget %d)\n"
      instance index aborts max_aborts;
    exit 11

(* Resolve a --mutate argument to an IR fault kind. *)
let mutation_of_name name =
  match List.assoc_opt name Faults.Irfault.kinds with
  | Some k -> k
  | None ->
    Printf.eprintf "unknown mutation %s (have: %s)\n" name
      (String.concat ", " (List.map fst Faults.Irfault.kinds));
    exit 2

let apply_mutation kind prog =
  match Faults.Irfault.apply kind prog with
  | Some applied -> applied.Faults.Irfault.prog
  | None ->
    Printf.eprintf "mutation %s not applicable to this program\n"
      (Faults.Irfault.kind_name kind);
    exit 2

let cmd_dump_ir file bench input =
  let source, _ = resolve_program file bench input in
  with_errors (fun () ->
      print_string (Ir.Pp.program (Ir.Lower.compile_source source)))

let cmd_run file bench input =
  let source, input = resolve_program file bench input in
  with_errors (fun () ->
      let prog = Ir.Lower.compile_source source in
      let code = Runtime.Code.of_prog prog in
      let mem = Runtime.Memory.create () in
      let out = Runtime.Thread.run_sequential code ~input mem in
      List.iter (fun v -> Printf.printf "%d\n" v) out)

let cmd_depgraph file bench input threshold =
  (* Emit the dependence graph of each selected region as Graphviz DOT
     (the paper's Figure 5). *)
  let source, input = resolve_program file bench input in
  with_errors (fun () ->
      let prog = Ir.Lower.compile_source source in
      let profile = Profiler.Runner.run prog ~input ~watch:[] in
      let selected = Tlscore.Selection.select prog profile in
      let dp_run = Profiler.Runner.run prog ~input ~watch:selected in
      List.iter
        (fun (k : Profiler.Profile.loop_key) ->
          match Profiler.Profile.dep_profile dp_run k with
          | Some dp when Hashtbl.length dp.Profiler.Profile.dep_epochs > 0 ->
            Printf.printf "// region %s/L%d\n%s\n" k.Profiler.Profile.lk_func
              k.Profiler.Profile.lk_header
              (Profiler.Profile.to_dot ~threshold dp)
          | Some _ | None -> ())
        selected)

let cmd_profile file bench input threshold =
  let source, input = resolve_program file bench input in
  with_errors (fun () ->
      let prog = Ir.Lower.compile_source source in
      let profile = Profiler.Runner.run prog ~input ~watch:[] in
      Printf.printf "total dynamic instructions: %d\n\n"
        profile.Profiler.Profile.total_instrs;
      let cands = Tlscore.Selection.candidates prog profile in
      Printf.printf "region candidates (coverage / epochs-per-instance / instrs-per-epoch):\n";
      List.iter
        (fun (c : Tlscore.Selection.candidate) ->
          Printf.printf "  %s/L%d  %5.1f%%  %7.1f  %7.1f\n"
            c.Tlscore.Selection.key.Profiler.Profile.lk_func
            c.Tlscore.Selection.key.Profiler.Profile.lk_header
            (100.0 *. c.Tlscore.Selection.coverage)
            c.Tlscore.Selection.epochs_per_instance
            c.Tlscore.Selection.instrs_per_epoch)
        cands;
      let selected = Tlscore.Selection.select prog profile in
      Printf.printf "\nselected regions: %s\n\n"
        (String.concat ", "
           (List.map
              (fun (k : Profiler.Profile.loop_key) ->
                Printf.sprintf "%s/L%d" k.Profiler.Profile.lk_func
                  k.Profiler.Profile.lk_header)
              selected));
      let dp_run = Profiler.Runner.run prog ~input ~watch:selected in
      List.iter
        (fun (k : Profiler.Profile.loop_key) ->
          match Profiler.Profile.dep_profile dp_run k with
          | None -> ()
          | Some dp ->
            Printf.printf "loop %s/L%d: %d epochs; frequent dependences (>=%.0f%%):\n"
              k.Profiler.Profile.lk_func k.Profiler.Profile.lk_header
              dp.Profiler.Profile.total_epochs (100.0 *. threshold);
            List.iter
              (fun (d : Profiler.Profile.dep) ->
                let count =
                  match
                    Hashtbl.find_opt dp.Profiler.Profile.dep_epochs d
                  with
                  | Some c -> c
                  | None -> 0
                in
                Printf.printf "  %s -> %s  (%d epochs, %.0f%%)\n"
                  (Profiler.Profile.pp_access d.Profiler.Profile.producer)
                  (Profiler.Profile.pp_access d.Profiler.Profile.consumer)
                  count
                  (Support.Stats.percent (float_of_int count)
                     (float_of_int dp.Profiler.Profile.total_epochs)))
              (Profiler.Profile.frequent_deps dp ~threshold))
        selected)

let cmd_compile file bench input threshold sync_sched =
  let source, input = resolve_program file bench input in
  with_errors (fun () ->
      let compiled =
        Tlscore.Pipeline.compile ~sync_sched ~source ~profile_input:input
          ~memory_sync:
            (Tlscore.Pipeline.Profiled { dep_input = input; threshold })
          ()
      in
      Printf.printf "selected regions: %d\n"
        (List.length compiled.Tlscore.Pipeline.selected);
      List.iter
        (fun ((key : Profiler.Profile.loop_key), factor) ->
          if factor > 1 then
            Printf.printf "unrolled %s/L%d by %d\n" key.Profiler.Profile.lk_func
              key.Profiler.Profile.lk_header factor)
        compiled.Tlscore.Pipeline.unroll_factors;
      List.iter
        (fun (key, (stats : Tlscore.Memsync.stats)) ->
          Printf.printf
            "region %s/L%d: %d groups (%d static), %d sync loads, %d signals \
             (+%d guarded), %d clones (+%d instrs), %d latch nulls (%d elided)\n"
            key.Profiler.Profile.lk_func key.Profiler.Profile.lk_header
            stats.Tlscore.Memsync.ms_groups stats.Tlscore.Memsync.ms_static_groups
            stats.Tlscore.Memsync.ms_sync_loads stats.Tlscore.Memsync.ms_sync_stores
            stats.Tlscore.Memsync.ms_guarded_signals stats.Tlscore.Memsync.ms_clones
            stats.Tlscore.Memsync.ms_instrs_added stats.Tlscore.Memsync.ms_null_signals
            stats.Tlscore.Memsync.ms_elided_nulls)
        compiled.Tlscore.Pipeline.mem_stats;
      if sync_sched then
        Printf.printf "sync scheduler: %s\n"
          (Analysis.Syncsched.to_string compiled.Tlscore.Pipeline.sched_stats);
      print_newline ();
      print_string (Ir.Pp.program compiled.Tlscore.Pipeline.prog))

(* Compile with memory sync on [input] and report synclint findings.
   Returns the finding count. *)
let lint_one ?mutate ~label source input threshold =
  with_errors (fun () ->
      let compiled =
        Tlscore.Pipeline.compile ~lint:(mutate = None) ~source
          ~profile_input:input
          ~memory_sync:
            (Tlscore.Pipeline.Profiled { dep_input = input; threshold })
          ()
      in
      let prog, findings =
        match mutate with
        | None ->
          (compiled.Tlscore.Pipeline.prog, compiled.Tlscore.Pipeline.lint_findings)
        | Some kind ->
          (* Lint the mutated program: the clone keeps iids and labels, so
             the dependence profiles still apply. *)
          let prog = apply_mutation kind compiled.Tlscore.Pipeline.prog in
          ( prog,
            Analysis.Synclint.run_prog
              ~dep_profiles:compiled.Tlscore.Pipeline.dep_profiles prog )
      in
      List.iter
        (fun (fd : Analysis.Synclint.finding) ->
          let what =
            match fd.Analysis.Synclint.f_iid with
            | Some iid -> begin
              match Ir.Prog.iid_info prog iid with
              | Some info -> Printf.sprintf "  (%s)" info.Ir.Prog.what
              | None -> ""
            end
            | None -> ""
          in
          Printf.printf "%s: %s%s\n" label (Analysis.Synclint.to_string fd)
            what)
        findings;
      if findings = [] then begin
        let n = List.length prog.Ir.Prog.regions in
        Printf.printf "%s: clean (%d region%s)\n" label n
          (if n = 1 then "" else "s")
      end;
      List.length findings)

let cmd_lint file bench input threshold mutate =
  let mutate = Option.map mutation_of_name mutate in
  let total =
    match (bench, file) with
    | None, None ->
      (* No program named: lint every bundled benchmark on its reference
         input. *)
      List.fold_left
        (fun acc name ->
          match Workloads.Registry.find name with
          | Some w ->
            acc
            + lint_one ?mutate ~label:name w.Workloads.Workload.source
                w.Workloads.Workload.ref_input threshold
          | None -> acc)
        0 Workloads.Registry.names
    | _ ->
      let source, input = resolve_program file bench input in
      let label =
        match (bench, file) with
        | Some b, _ -> b
        | _, Some path -> path
        | None, None -> "program"
      in
      lint_one ?mutate ~label source input threshold
  in
  if total > 0 then exit 1

let config_of_mode = function
  | "U" -> Tls.Config.u_mode
  | "C" -> Tls.Config.c_mode
  | "H" -> Tls.Config.h_mode
  | "P" -> Tls.Config.p_mode
  | "B" -> Tls.Config.b_mode
  | m ->
    Printf.eprintf "unknown mode %s (have U, C, H, P, B)\n" m;
    exit 2

(* Uniform cycle-budget override (--max-cycles): one knob for every
   simulation a command runs, so chaos/bench sweeps can be bounded. *)
let apply_budget max_cycles cfg =
  match max_cycles with
  | None -> cfg
  | Some m when m > 0 -> { cfg with Tls.Config.max_cycles = m }
  | Some m ->
    Printf.eprintf "--max-cycles must be positive (got %d)\n" m;
    exit 2

(* The DESIGN §12 finite-resource knobs (--sig-buffer, --spec-lines,
   --fwd-queue, --overflow-policy).  Unset knobs keep the unbounded
   defaults, so plain `simulate` output is unchanged. *)
let apply_limits (sig_buffer, spec_lines, fwd_queue, policy) cfg =
  let bound name v set cfg =
    match v with
    | None -> cfg
    | Some n when n >= 0 -> set cfg n
    | Some n ->
      Printf.eprintf "--%s must be non-negative (got %d)\n" name n;
      exit 2
  in
  { cfg with Tls.Config.overflow_policy = policy }
  |> bound "sig-buffer" sig_buffer (fun cfg n ->
         { cfg with Tls.Config.sig_buffer_entries = n })
  |> bound "spec-lines" spec_lines (fun cfg n ->
         { cfg with Tls.Config.spec_lines_per_epoch = n })
  |> bound "fwd-queue" fwd_queue (fun cfg n ->
         { cfg with Tls.Config.fwd_queue_depth = n })

let cmd_benchdiff old_file new_file tolerance =
  let usage () =
    prerr_endline "usage: mrvcc benchdiff OLD.json NEW.json [--tolerance T]";
    exit 2
  in
  let old_path = match old_file with Some p -> p | None -> usage () in
  let new_path = match new_file with Some p -> p | None -> usage () in
  if tolerance < 0.0 then begin
    Printf.eprintf "--tolerance must be non-negative (got %g)\n" tolerance;
    exit 2
  end;
  match Harness.Bench.compare_files ~tolerance old_path new_path with
  | Ok report ->
    print_string report;
    Printf.printf "perf gate: OK (%s -> %s)\n" old_path new_path
  | Error report ->
    print_string report;
    print_newline ();
    Printf.printf "perf gate: FAILED (%s -> %s)\n" old_path new_path;
    exit 1

let cmd_simulate file bench input threshold mode mutate max_cycles limits
    sync_sched engine icode =
  let source, input = resolve_program file bench input in
  with_errors (fun () ->
      let memory_sync =
        match mode with
        | "U" | "H" | "P" -> Tlscore.Pipeline.No_memory_sync
        | _ -> Tlscore.Pipeline.Profiled { dep_input = input; threshold }
      in
      let compiled =
        Tlscore.Pipeline.compile ~sync_sched ~source ~profile_input:input
          ~memory_sync ()
      in
      let code =
        match mutate with
        | None -> compiled.Tlscore.Pipeline.code
        | Some name ->
          let kind = mutation_of_name name in
          Printf.printf "injected IR fault: %s\n" (Faults.Irfault.kind_name kind);
          Runtime.Code.of_prog
            (apply_mutation kind compiled.Tlscore.Pipeline.prog)
      in
      let cfg =
        {
          (apply_limits limits (apply_budget max_cycles (config_of_mode mode)))
          with
          Tls.Config.engine;
          icode;
        }
      in
      let bounded =
        match limits with
        | None, None, None, _ -> false
        | _ -> true
      in
      let r = guarded (fun () -> Tls.Sim.run cfg code ~input ()) in
      let reference = Tlscore.Pipeline.original ~source in
      let seq =
        guarded (fun () ->
            Tls.Sim.run_sequential cfg
              (Runtime.Code.of_prog reference)
              ~input ~track:compiled.Tlscore.Pipeline.code.Runtime.Code.regions)
      in
      Printf.printf "mode %s\n" mode;
      if sync_sched then
        Printf.printf "sync scheduler:      %s\n"
          (Analysis.Syncsched.to_string compiled.Tlscore.Pipeline.sched_stats);
      Printf.printf "sequential cycles:   %d\n" seq.Tls.Simstats.sq_cycles;
      Printf.printf "TLS cycles:          %d (%.2fx)\n" r.Tls.Simstats.total_cycles
        (Support.Stats.ratio
           (float_of_int seq.Tls.Simstats.sq_cycles)
           (float_of_int r.Tls.Simstats.total_cycles));
      Printf.printf "region cycles:       %d\n" r.Tls.Simstats.region_cycles;
      Printf.printf "epochs committed:    %d (squashed %d, violations %d)\n"
        r.Tls.Simstats.epochs_committed r.Tls.Simstats.epochs_squashed
        r.Tls.Simstats.violations;
      let s = r.Tls.Simstats.slots in
      Printf.printf "slots: busy %d, sync %d, fail %d, other %d (of %d)\n"
        s.Tls.Simstats.s_busy s.Tls.Simstats.s_sync s.Tls.Simstats.s_fail
        (Tls.Simstats.other s) s.Tls.Simstats.s_total;
      if bounded then begin
        let rs = r.Tls.Simstats.resources in
        Printf.printf "resource peaks:  sig-buffer %d, spec-lines %d, fwd-queue %d\n"
          r.Tls.Simstats.max_signal_buffer rs.Tls.Simstats.rs_peak_spec_lines
          rs.Tls.Simstats.rs_peak_fwd_queue;
        Printf.printf
          "resource events: sig-drops %d, spec-overflows %d (stalls %d, \
           squashes %d), bp-signals %d\n"
          rs.Tls.Simstats.rs_sig_drops rs.Tls.Simstats.rs_spec_overflows
          rs.Tls.Simstats.rs_spec_stalls rs.Tls.Simstats.rs_spec_squashes
          rs.Tls.Simstats.rs_bp_signals
      end;
      Printf.printf "output: %s\n"
        (String.concat " " (List.map string_of_int r.Tls.Simstats.output));
      if r.Tls.Simstats.output <> seq.Tls.Simstats.sq_output then begin
        prerr_endline "ERROR: TLS output differs from sequential!";
        exit 1
      end)

(* ------------------------------------------------------------------ *)
(* exec: real speculative execution on domains (DESIGN §16)            *)
(* ------------------------------------------------------------------ *)

(* Runtime-fault specs, e.g. delay-commit:0:5000, yield:1:4,
   drop-wakeup:2:0, crash:1, crash:1:persistent.  The first number is
   always the epoch index targeted (within the first region instance). *)
let parse_exec_fault s =
  let usage () =
    Printf.eprintf
      "bad --inject %s (want delay-commit:EPOCH:MS | yield:EPOCH:EVERY | \
       drop-wakeup:EPOCH:CHANNEL | crash:EPOCH[:persistent])\n"
      s;
    exit 2
  in
  match String.split_on_char ':' s with
  | [ "delay-commit"; e; ms ] -> (
    try Specrt.Delay_commit { epoch = int_of_string e; ms = int_of_string ms }
    with Failure _ -> usage ())
  | [ "yield"; e; n ] -> (
    try Specrt.Yield_steps { epoch = int_of_string e; every = int_of_string n }
    with Failure _ -> usage ())
  | [ "drop-wakeup"; e; ch ] -> (
    try
      Specrt.Drop_wakeup { epoch = int_of_string e; channel = int_of_string ch }
    with Failure _ -> usage ())
  | [ "crash"; e ] -> (
    try Specrt.Crash_epoch { epoch = int_of_string e; persistent = false }
    with Failure _ -> usage ())
  | [ "crash"; e; "persistent" ] -> (
    try Specrt.Crash_epoch { epoch = int_of_string e; persistent = true }
    with Failure _ -> usage ())
  | _ -> usage ()

let cmd_exec file bench input threshold mode sync_sched
    (domains, watchdog_ms, max_aborts, record, replay, injects) =
  let source, input = resolve_program file bench input in
  with_errors (fun () ->
      let memory_sync =
        match mode with
        | "U" | "H" | "P" -> Tlscore.Pipeline.No_memory_sync
        | _ -> Tlscore.Pipeline.Profiled { dep_input = input; threshold }
      in
      let compiled =
        Tlscore.Pipeline.compile ~sync_sched ~source ~profile_input:input
          ~memory_sync ()
      in
      let code = compiled.Tlscore.Pipeline.code in
      let cfg = config_of_mode mode in
      let base = Specrt.default_opts cfg in
      let opts =
        {
          base with
          Specrt.domains = Option.value domains ~default:base.Specrt.domains;
          watchdog_ms;
          max_aborts;
          faults = List.map parse_exec_fault injects;
          replay = Option.map Specrt.read_log replay;
        }
      in
      let r = guarded (fun () -> Specrt.run ~opts cfg code ~input) in
      (match record with
      | Some path ->
        Specrt.write_log path r.Specrt.r_events;
        Printf.printf "recorded %d events to %s\n"
          (List.length r.Specrt.r_events) path
      | None -> ());
      Printf.printf "mode %s, %d domains%s\n" mode r.Specrt.r_domains
        (if opts.Specrt.replay <> None then " (replay, serial)" else "");
      Printf.printf "epochs committed:    %d (squashed %d, violations %d)\n"
        r.Specrt.r_epochs_committed r.Specrt.r_epochs_squashed
        r.Specrt.r_violations;
      Printf.printf "region instances:    %s\n"
        (String.concat ", "
           (List.map
              (fun (rid, n) -> Printf.sprintf "%d:%d" rid n)
              r.Specrt.r_region_instances));
      Printf.printf "output: %s\n"
        (String.concat " " (List.map string_of_int r.Specrt.r_output));
      (* The acceptance bar: committed output and memory byte-identical
         to the sequential program, whatever the interleaving did. *)
      let seq_mem = Runtime.Memory.create () in
      Runtime.Memory.store_all seq_mem code.Runtime.Code.initial_stores;
      let seq_out = Runtime.Thread.run_sequential code ~input seq_mem in
      if r.Specrt.r_output <> seq_out then begin
        prerr_endline "ERROR: exec output differs from sequential!";
        exit 1
      end;
      if not (Runtime.Memory.equal seq_mem r.Specrt.r_final_memory) then begin
        prerr_endline "ERROR: exec final memory differs from sequential!";
        exit 1
      end)

(* ------------------------------------------------------------------ *)
(* analyze: static stall estimation + violation-risk prediction        *)
(* ------------------------------------------------------------------ *)

let params_of_config (cfg : Tls.Config.t) =
  {
    Analysis.Staticcost.issue_width = cfg.Tls.Config.issue_width;
    lat_mul = cfg.Tls.Config.lat_mul;
    lat_div = cfg.Tls.Config.lat_div;
    forward_latency = cfg.Tls.Config.forward_latency;
    spawn_overhead = cfg.Tls.Config.spawn_overhead;
    track_line_words =
      (if cfg.Tls.Config.word_level_tracking then None
       else Some cfg.Tls.Config.line_words);
  }

(* Relative error of a prediction against a measurement, with a floor of
   one cycle so zero-stall channels don't divide by zero. *)
let rel_err ~predicted ~measured =
  Float.abs (predicted -. measured) /. Float.max 1.0 measured

let cmd_analyze file bench input threshold mode sync_sched json validate
    max_cycles =
  let source, input = resolve_program file bench input in
  with_errors (fun () ->
      let compiled =
        Tlscore.Pipeline.compile ~sync_sched ~source ~profile_input:input
          ~memory_sync:
            (Tlscore.Pipeline.Profiled { dep_input = input; threshold })
          ()
      in
      let prog = compiled.Tlscore.Pipeline.prog in
      (* Profile the transformed program: the estimator's trip counts must
         describe the unrolled, synchronized loops it walks (waits are the
         identity and signals no-ops under sequential semantics, so the
         sync instructions don't perturb the profile). *)
      let profile = Profiler.Runner.run prog ~input ~watch:[] in
      let cfg = apply_budget max_cycles (config_of_mode mode) in
      let params = params_of_config cfg in
      let costs = Analysis.Staticcost.analyze params profile prog in
      (* Optional differential validation: run the same artifact through
         the simulator and put its per-channel sync-stall counters (issue
         slots, divided by the issue width to get cycles) and observed
         violations next to the predictions. *)
      let measured =
        if not validate then None
        else
          let r =
            guarded (fun () ->
                Tls.Sim.run cfg compiled.Tlscore.Pipeline.code ~input ())
          in
          Some r
      in
      let measured_stall ch =
        match measured with
        | None -> None
        | Some r ->
          Some
            (float_of_int
               (Option.value ~default:0
                  (List.assoc_opt ch r.Tls.Simstats.sync_stall_by_channel))
            /. float_of_int cfg.Tls.Config.issue_width)
      in
      let observed_violations () =
        match measured with
        | None -> []
        | Some r ->
          List.filter (fun (iid, _) -> iid >= 0)
            r.Tls.Simstats.violated_load_counts
      in
      let predicted_all =
        List.concat_map
          (fun (rc : Analysis.Staticcost.region_cost) ->
            rc.Analysis.Staticcost.rc_violations)
          costs
      in
      (* Acceptance gate of the predictor: every simulator-observed
         violated load must be in the predicted superset. *)
      let missed =
        List.filter
          (fun (iid, _) -> not (List.mem iid predicted_all))
          (observed_violations ())
      in
      if json then begin
        let b = Buffer.create 4096 in
        Buffer.add_string b "{\n";
        Buffer.add_string b
          (Printf.sprintf
             "  \"mode\": %S, \"issue_width\": %d, \"forward_latency\": %d, \
              \"spawn_overhead\": %d,\n"
             mode cfg.Tls.Config.issue_width cfg.Tls.Config.forward_latency
             cfg.Tls.Config.spawn_overhead);
        if sync_sched then
          Buffer.add_string b
            (Printf.sprintf "  \"sync_sched\": { %s },\n"
               (let s = compiled.Tlscore.Pipeline.sched_stats in
                Printf.sprintf
                  "\"waits_sunk\": %d, \"mem_sunk\": %d, \
                   \"signals_hoisted\": %d, \"signals_inlined\": %d, \
                   \"slots\": %d"
                  s.Analysis.Syncsched.ss_waits_sunk
                  s.Analysis.Syncsched.ss_mem_sunk
                  s.Analysis.Syncsched.ss_signals_hoisted
                  s.Analysis.Syncsched.ss_signals_inlined
                  s.Analysis.Syncsched.ss_slots));
        Buffer.add_string b "  \"regions\": [\n";
        List.iteri
          (fun i (rc : Analysis.Staticcost.region_cost) ->
            if i > 0 then Buffer.add_string b ",\n";
            Buffer.add_string b
              (Printf.sprintf
                 "    { \"id\": %d, \"func\": %S, \"header\": %d, \
                  \"epochs\": %d,\n      \"channels\": ["
                 rc.Analysis.Staticcost.rc_id rc.Analysis.Staticcost.rc_func
                 rc.Analysis.Staticcost.rc_header
                 rc.Analysis.Staticcost.rc_epochs);
            List.iteri
              (fun j (cc : Analysis.Staticcost.channel_cost) ->
                if j > 0 then Buffer.add_string b ",";
                Buffer.add_string b
                  (Printf.sprintf
                     "\n        { \"channel\": %d, \"kind\": %S, \
                      \"producer\": %.2f, \"consumer\": %.2f, \
                      \"stall\": %.2f, \"total\": %.2f"
                     cc.Analysis.Staticcost.cc_channel
                     (Analysis.Staticcost.kind_string
                        cc.Analysis.Staticcost.cc_kind)
                     cc.Analysis.Staticcost.cc_producer
                     cc.Analysis.Staticcost.cc_consumer
                     cc.Analysis.Staticcost.cc_stall
                     cc.Analysis.Staticcost.cc_total);
                (match measured_stall cc.Analysis.Staticcost.cc_channel with
                | Some m ->
                  Buffer.add_string b
                    (Printf.sprintf
                       ", \"measured\": %.2f, \"rel_err\": %.3f" m
                       (rel_err
                          ~predicted:cc.Analysis.Staticcost.cc_total
                          ~measured:m))
                | None -> ());
                Buffer.add_string b " }")
              rc.Analysis.Staticcost.rc_channels;
            Buffer.add_string b
              (Printf.sprintf "\n      ],\n      \"predicted_violations\": [%s] }"
                 (String.concat ", "
                    (List.map string_of_int
                       rc.Analysis.Staticcost.rc_violations))))
          costs;
        Buffer.add_string b "\n  ]";
        (match measured with
        | None -> ()
        | Some r ->
          Buffer.add_string b
            (Printf.sprintf
               ",\n  \"observed_violations\": [%s], \"sim_sync_slots\": %d, \
                \"violation_superset_ok\": %b"
               (String.concat ", "
                  (List.map
                     (fun (iid, _) -> string_of_int iid)
                     (observed_violations ())))
               r.Tls.Simstats.slots.Tls.Simstats.s_sync (missed = [])));
        Buffer.add_string b "\n}\n";
        print_string (Buffer.contents b);
        if missed <> [] then exit 1
      end
      else begin
        let label =
          match (bench, file) with
          | Some b, _ -> b
          | _, Some path -> path
          | None, None -> "program"
        in
        Printf.printf
          "%s: static cost model (mode %s: issue %d, forward %d, spawn %d)\n"
          label mode
          cfg.Tls.Config.issue_width cfg.Tls.Config.forward_latency
          cfg.Tls.Config.spawn_overhead;
        if sync_sched then
          Printf.printf "sync scheduler: %s\n"
            (Analysis.Syncsched.to_string compiled.Tlscore.Pipeline.sched_stats);
        List.iter
          (fun (rc : Analysis.Staticcost.region_cost) ->
            Printf.printf "region %d %s/L%d: %d epochs\n"
              rc.Analysis.Staticcost.rc_id rc.Analysis.Staticcost.rc_func
              rc.Analysis.Staticcost.rc_header rc.Analysis.Staticcost.rc_epochs;
            List.iter
              (fun (cc : Analysis.Staticcost.channel_cost) ->
                Printf.printf
                  "  ch %-3d %-6s producer %7.1f  consumer %7.1f  \
                   stall/epoch %7.1f  total %9.1f"
                  cc.Analysis.Staticcost.cc_channel
                  (Analysis.Staticcost.kind_string
                     cc.Analysis.Staticcost.cc_kind)
                  cc.Analysis.Staticcost.cc_producer
                  cc.Analysis.Staticcost.cc_consumer
                  cc.Analysis.Staticcost.cc_stall
                  cc.Analysis.Staticcost.cc_total;
                (match measured_stall cc.Analysis.Staticcost.cc_channel with
                | Some m ->
                  Printf.printf "  measured %9.1f  rel-err %.3f" m
                    (rel_err
                       ~predicted:cc.Analysis.Staticcost.cc_total ~measured:m)
                | None -> ());
                print_newline ())
              rc.Analysis.Staticcost.rc_channels;
            let vs = rc.Analysis.Staticcost.rc_violations in
            Printf.printf "  predicted violations: %d load%s%s\n"
              (List.length vs)
              (if List.length vs = 1 then "" else "s")
              (if vs = [] then ""
               else
                 " ("
                 ^ String.concat " "
                     (List.map (Printf.sprintf "i%d") vs)
                 ^ ")"))
          costs;
        match measured with
        | None -> ()
        | Some r ->
          let observed = observed_violations () in
          let sentinel =
            List.fold_left
              (fun acc (iid, n) -> if iid < 0 then acc + n else acc)
              0 r.Tls.Simstats.violated_load_counts
          in
          Printf.printf
            "simulator: %d violations (%d distinct loads, %d unattributed), \
             %d sync slots\n"
            r.Tls.Simstats.violations (List.length observed) sentinel
            r.Tls.Simstats.slots.Tls.Simstats.s_sync;
          if missed = [] then
            Printf.printf
              "violation superset: ok (%d predicted >= %d observed)\n"
              (List.length predicted_all) (List.length observed)
          else begin
            Printf.printf "violation superset: FAILED — observed but not predicted:%s\n"
              (String.concat ""
                 (List.map (fun (iid, _) -> Printf.sprintf " i%d" iid) missed));
            exit 1
          end
      end)

(* ------------------------------------------------------------------ *)
(* chaos: the fault x workload x mode resilience matrix                 *)
(* ------------------------------------------------------------------ *)

let program_of_workload (w : Workloads.Workload.t) =
  {
    Faults.Chaos.p_name = w.Workloads.Workload.name;
    p_source = w.Workloads.Workload.source;
    p_train = w.Workloads.Workload.train_input;
    p_ref = w.Workloads.Workload.ref_input;
    p_select_main = false;
  }

let chaos_programs bench fuzz seed =
  let named =
    match bench with
    | None -> []
    | Some "all" ->
      List.filter_map Workloads.Registry.find Workloads.Registry.names
      |> List.map program_of_workload
    | Some names ->
      String.split_on_char ',' names
      |> List.map (fun name ->
             match Workloads.Registry.find (String.trim name) with
             | Some w -> program_of_workload w
             | None ->
               Printf.eprintf "unknown benchmark %s (have: all, %s)\n" name
                 (String.concat ", " Workloads.Registry.names);
               exit 2)
  in
  named @ Faults.Chaos.fuzz_programs ~count:fuzz ~seed

let chaos_modes s =
  String.split_on_char ',' s
  |> List.map (fun m ->
         let m = String.trim m in
         (m, config_of_mode m))

(* Serve-layer chaos works through the service request path, so it runs
   over bundled benchmark names (fuzz programs would need the
   force-select-main hook the request format deliberately lacks). *)
let serve_chaos_names bench =
  match bench with
  | None ->
    prerr_endline "serve chaos needs --bench all or --bench NAME[,NAME...]";
    exit 2
  | Some "all" -> Workloads.Registry.names
  | Some names ->
    String.split_on_char ',' names
    |> List.map (fun name ->
           let name = String.trim name in
           match Workloads.Registry.find name with
           | Some _ -> name
           | None ->
             Printf.eprintf "unknown benchmark %s (have: all, %s)\n" name
               (String.concat ", " Workloads.Registry.names);
             exit 2)

(* Runtime-layer chaos: the speculative executor's fault catalog.  Runs
   serially (each cell already spawns its own worker domains) over
   bundled benchmark names; the rendered table is byte-deterministic
   despite real concurrency, because outcomes classify only committed
   state and typed errors. *)
let cmd_chaos_exec bench =
  let programs = chaos_programs bench 0 0 in
  if programs = [] then begin
    prerr_endline "exec chaos needs --bench all or --bench NAME[,NAME...]";
    exit 2
  end;
  with_errors (fun () ->
      let cells =
        guarded (fun () ->
            Faults.Chaosexec.run_matrix ~log:print_endline programs)
      in
      print_newline ();
      print_string (Faults.Chaosexec.render_table cells);
      if Faults.Chaosexec.count_failed cells > 0 then exit 1)

let cmd_chaos_serve bench jobs =
  let programs = serve_chaos_names bench in
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "mrvcc-serve-chaos.%d" (Unix.getpid ()))
  in
  Serve.Cache.remove_tree dir;
  let cells =
    Fun.protect
      ~finally:(fun () -> Serve.Cache.remove_tree dir)
      (fun () ->
        with_errors (fun () ->
            Serve.Chaoserve.run ~log:print_endline ~jobs ~cache_dir:dir
              ~programs ()))
  in
  print_newline ();
  print_string (Serve.Chaoserve.render_table cells);
  if Serve.Chaoserve.count_failed cells > 0 then exit 1

let cmd_chaos bench modes fuzz seed jobs max_cycles capacity timeout retry
    sync_sched =
  let programs = chaos_programs bench fuzz seed in
  if programs = [] then begin
    prerr_endline "nothing to run: pass --bench all, --bench NAME[,NAME...], and/or --fuzz N";
    exit 2
  end;
  let modes =
    chaos_modes modes
    |> List.map (fun (m, cfg) -> (m, apply_budget max_cycles cfg))
  in
  let pool = Harness.Jobs.create ?timeout ~retry ~jobs () in
  with_errors (fun () ->
      if capacity then begin
        let cells =
          guarded (fun () ->
              Faults.Chaos.run_capacity ~log:print_endline
                ~map:pool.Harness.Jobs.map ~sync_sched ~modes programs)
        in
        print_newline ();
        print_string (Faults.Chaos.render_capacity_table cells);
        if Faults.Chaos.count_capacity_failed cells > 0 then exit 1
      end
      else begin
        let cells =
          guarded (fun () ->
              Faults.Chaos.run_matrix ~log:print_endline
                ~map:pool.Harness.Jobs.map ~sync_sched ~modes
                ~faults:Faults.Fault.catalog programs)
        in
        print_newline ();
        print_string (Faults.Chaos.render_table cells);
        if Faults.Chaos.count_failed cells > 0 then exit 1
      end)

(* ------------------------------------------------------------------ *)
(* bench: machine-readable performance baseline                        *)
(* ------------------------------------------------------------------ *)

let bench_workloads bench =
  match bench with
  | None | Some "all" ->
    List.filter_map Workloads.Registry.find Workloads.Registry.names
  | Some names ->
    String.split_on_char ',' names
    |> List.map (fun name ->
           match Workloads.Registry.find (String.trim name) with
           | Some w -> w
           | None ->
             Printf.eprintf "unknown benchmark %s (have: all, %s)\n" name
               (String.concat ", " Workloads.Registry.names);
             exit 2)

(* Bounded chaos matrix for the serial-vs-parallel timing section: two
   real workloads plus two fuzz programs, one fault family per run. *)
let bench_matrix_programs () =
  let named =
    List.filteri (fun i _ -> i < 2) Workloads.Registry.names
    |> List.filter_map Workloads.Registry.find
    |> List.map program_of_workload
  in
  named @ Faults.Chaos.fuzz_programs ~count:2 ~seed:7

let cmd_bench bench json out jobs matrix serve timeout retry =
  let workloads = bench_workloads bench in
  if workloads = [] then begin
    prerr_endline "nothing to bench";
    exit 2
  end;
  let pool = Harness.Jobs.create ?timeout ~retry ~jobs () in
  let wbs =
    with_errors (fun () ->
        guarded (fun () ->
            pool.Harness.Jobs.map Harness.Bench.bench_workload workloads))
  in
  let mx =
    if not matrix then None
    else begin
      let programs = bench_matrix_programs () in
      let modes = chaos_modes "U,C" in
      let faults = Faults.Fault.catalog in
      let cells = ref 0 in
      let run map =
        cells := List.length (Faults.Chaos.run_matrix ~map ~modes ~faults programs)
      in
      let _, serial =
        Harness.Bench.timed_phase "matrix_serial" (fun () ->
            run (fun f l -> List.map f l))
      in
      let _, par =
        Harness.Bench.timed_phase "matrix_parallel" (fun () ->
            run pool.Harness.Jobs.map)
      in
      Some
        {
          Harness.Bench.mx_name = "chaos";
          mx_cells = !cells;
          mx_jobs = jobs;
          mx_serial_wall_ns = serial.Harness.Bench.ph_wall_ns;
          mx_parallel_wall_ns = par.Harness.Bench.ph_wall_ns;
        }
    end
  in
  let sv =
    if not serve then []
    else
      try Serve.Load.run ~jobs ()
      with Failure msg ->
        prerr_endline msg;
        exit 1
  in
  let doc =
    {
      Harness.Bench.bench_schema_version = Harness.Bench.schema_version;
      bench_workloads = wbs;
      bench_matrix = mx;
      bench_serve = sv;
    }
  in
  if json then begin
    let text = Harness.Bench.to_json doc in
    match out with
    | None -> print_string text
    | Some path ->
      (* Atomic: a reader (or a kill mid-write) never sees a truncated
         baseline — the old file survives until the rename. *)
      Harness.Bench.write_file_atomic path text;
      Printf.printf "wrote %s (%d workloads%s)\n" path (List.length wbs)
        (if mx = None then "" else ", matrix")
  end
  else begin
    let rows =
      List.concat_map
        (fun (wb : Harness.Bench.workload_bench) ->
          List.map
            (fun (p : Harness.Bench.phase) ->
              [
                wb.Harness.Bench.wb_name;
                p.Harness.Bench.ph_name;
                Printf.sprintf "%.3f ms"
                  (float_of_int p.Harness.Bench.ph_wall_ns /. 1e6);
                (match p.Harness.Bench.ph_cycles with
                | Some c -> string_of_int c
                | None -> "-");
              ])
            wb.Harness.Bench.wb_phases)
        wbs
    in
    print_string
      (Support.Table.render
         ~header:[ "workload"; "phase"; "wall"; "cycles" ]
         rows);
    (match mx with
    | None -> ()
    | Some m ->
      Printf.printf "matrix %s: %d cells, serial %.3f ms, --jobs %d %.3f ms\n"
        m.Harness.Bench.mx_name m.Harness.Bench.mx_cells
        (float_of_int m.Harness.Bench.mx_serial_wall_ns /. 1e6)
        m.Harness.Bench.mx_jobs
        (float_of_int m.Harness.Bench.mx_parallel_wall_ns /. 1e6));
    if sv <> [] then print_newline ();
    List.iter
      (fun (s : Harness.Bench.serve_phase) ->
        Printf.printf
          "serve %-11s %d requests, %d shed, %d hits, p50 %.3f ms, p99 %.3f \
           ms\n"
          s.Harness.Bench.sv_name s.Harness.Bench.sv_requests
          s.Harness.Bench.sv_shed s.Harness.Bench.sv_cache_hits
          (float_of_int s.Harness.Bench.sv_p50_ns /. 1e6)
          (float_of_int s.Harness.Bench.sv_p99_ns /. 1e6))
      sv
  end

(* ------------------------------------------------------------------ *)
(* serve: persistent compile service over JSONL requests               *)
(* ------------------------------------------------------------------ *)

let cmd_serve file jobs out (cache_dir, no_cache, queue, rate, deadline,
                             retries, backoff, no_timing) =
  let text =
    match file with
    | Some path -> read_file path
    | None -> In_channel.input_all stdin
  in
  match Serve.Request.parse_all text with
  | Error msgs ->
    List.iter prerr_endline msgs;
    exit 2
  | Ok [] ->
    prerr_endline "no requests (give a JSONL file or pipe requests to stdin)";
    exit 2
  | Ok requests ->
    let cfg =
      {
        Serve.Service.sc_cache_dir =
          (if no_cache then None else Some cache_dir);
        sc_queue = queue;
        sc_rate = rate;
        sc_jobs = jobs;
        sc_deadline_s = deadline;
        sc_retries = retries;
        sc_backoff_s = backoff;
        sc_timing = not no_timing;
      }
    in
    let o =
      try Serve.Service.run cfg requests
      with Invalid_argument msg ->
        prerr_endline msg;
        exit 2
    in
    let st = o.Serve.Service.so_stats in
    List.iter
      (fun q -> Printf.eprintf "quarantined corrupt cache entry %s\n" q)
      st.Serve.Service.st_quarantined;
    let body =
      String.concat ""
        (List.map
           (fun r -> Serve.Request.response_line r ^ "\n")
           o.Serve.Service.so_responses)
    in
    (match out with
    | None -> print_string body
    | Some path ->
      (* Atomic, like the bench baseline: a kill mid-write never leaves a
         truncated response file. *)
      Harness.Bench.write_file_atomic path body;
      Printf.printf "wrote %s (%d responses)\n" path
        (List.length o.Serve.Service.so_responses));
    Printf.eprintf
      "serve: %d requests | %d ok | %d degraded | %d shed | %d deadline | %d \
       error | cache %d hit / %d miss / %d stale\n"
      st.Serve.Service.st_requests st.Serve.Service.st_ok
      st.Serve.Service.st_degraded st.Serve.Service.st_shed
      st.Serve.Service.st_deadline st.Serve.Service.st_error
      st.Serve.Service.st_cache_hits st.Serve.Service.st_cache_misses
      st.Serve.Service.st_cache_stale;
    exit (Serve.Service.exit_code st)

open Cmdliner

let file_arg =
  Arg.(value & pos 1 (some string) None & info [] ~docv:"FILE")

(* Second positional: the freshly measured baseline of `benchdiff OLD NEW`. *)
let file2_arg =
  Arg.(value & pos 2 (some string) None & info [] ~docv:"FILE2")

let bench_arg =
  Arg.(value & opt (some string) None & info [ "bench" ] ~docv:"NAME")

let input_arg =
  Arg.(value & opt (some string) None & info [ "in" ] ~docv:"N,N,...")

let threshold_arg =
  Arg.(value & opt float 0.05 & info [ "threshold" ] ~docv:"FRACTION")

let mode_arg = Arg.(value & opt string "C" & info [ "mode" ] ~docv:"U|C|H|P|B")

let mutate_arg =
  Arg.(value & opt (some string) None & info [ "mutate" ] ~docv:"FAULT")

let modes_arg =
  Arg.(value & opt string "U,C,H,B" & info [ "modes" ] ~docv:"M,M,...")

let fuzz_arg = Arg.(value & opt int 0 & info [ "fuzz" ] ~docv:"COUNT")
let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED")

let jobs_arg =
  let doc =
    "Run independent matrix cells on $(docv) domains. Output is \
     byte-identical to a serial run."
  in
  Arg.(value & opt int 1 & info [ "jobs"; "j" ] ~doc ~docv:"N")

let max_cycles_arg =
  let doc = "Override the simulator cycle budget for every simulation run." in
  Arg.(value & opt (some int) None & info [ "max-cycles" ] ~doc ~docv:"N")

let json_arg =
  Arg.(value & flag & info [ "json" ] ~doc:"Emit machine-readable JSON.")

let sync_sched_arg =
  Arg.(
    value & flag
    & info [ "sync-sched" ]
        ~doc:
          "Run the sync scheduler after the sync passes: hoist each \
           store+signal pair toward the stored value's definition and sink \
           each wait toward its first use, guarded by epoch dominance and \
           points-to facts.")

let validate_arg =
  Arg.(
    value & flag
    & info [ "validate" ]
        ~doc:
          "After the static analysis, run the simulator on the same artifact \
           and report each channel's measured sync stall with the relative \
           error of the prediction, plus the violation superset check \
           (exit 1 if a simulator-observed violation was not predicted).")

let out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "out" ] ~docv:"FILE" ~doc:"Write JSON to $(docv) instead of stdout.")

let matrix_arg =
  Arg.(
    value & flag
    & info [ "matrix" ]
        ~doc:"Also time the bounded chaos matrix, serial vs --jobs.")

let capacity_arg =
  Arg.(
    value & flag
    & info [ "capacity" ]
        ~doc:
          "Run the finite-resource capacity sweep instead of the fault \
           matrix: halve each resource limit from its observed peak until \
           degradation triggers, then classify the run.")

let timeout_arg =
  let doc =
    "Bound each matrix job's wall time to $(docv) seconds; a job past the \
     bound fails with Job_timeout naming its input index."
  in
  Arg.(value & opt (some float) None & info [ "timeout" ] ~doc ~docv:"SECONDS")

let retry_arg =
  Arg.(
    value & flag
    & info [ "retry" ]
        ~doc:"With --timeout, grant one retry at double the bound.")

let sig_buffer_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "sig-buffer" ] ~docv:"N"
        ~doc:
          "Bound the signal address buffer to $(docv) entries; overflowing \
           forwards degrade to the violation-protected NULL path.")

let spec_lines_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "spec-lines" ] ~docv:"N"
        ~doc:
          "Bound each epoch's speculative state to $(docv) cache lines; \
           overflow follows --overflow-policy (the oldest epoch is exempt).")

let fwd_queue_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "fwd-queue" ] ~docv:"N"
        ~doc:
          "Bound the per-epoch forwarding queue to $(docv) in-flight \
           channels; a full queue backpressures the producer.")

let overflow_policy_arg =
  Arg.(
    value
    & opt
        (enum
           [
             ("stall", Tls.Config.Overflow_stall);
             ("squash", Tls.Config.Overflow_squash);
           ])
        Tls.Config.Overflow_stall
    & info [ "overflow-policy" ] ~docv:"stall|squash"
        ~doc:
          "What a --spec-lines overflow does: stall the epoch until it is \
           oldest, or squash and restart it serialized.")

let engine_arg =
  Arg.(
    value
    & opt
        (enum
           [
             ("ref", Tls.Config.Engine_ref);
             ("event", Tls.Config.Engine_event);
           ])
        Tls.Config.Engine_event
    & info [ "engine" ] ~docv:"ref|event"
        ~doc:
          "Which simulator core $(b,simulate) runs: the reference \
           cycle-stepped engine or the event-driven engine (default). Both \
           produce byte-identical results; $(b,ref) exists as the oracle \
           the differential suite locks the event core against.")

let icode_arg =
  Arg.(
    value
    & opt (enum [ ("on", true); ("off", false) ]) true
    & info [ "icode" ] ~docv:"on|off"
        ~doc:
          "Whether the event engine dispatches on the flat pre-resolved \
           icode encoding (default, DESIGN §17) or interprets the boxed \
           IR directly. Results are byte-identical; $(b,off) is the \
           escape hatch and the baseline the icode speedup is measured \
           against.")

let tolerance_arg =
  Arg.(
    value & opt float 0.5
    & info [ "tolerance" ] ~docv:"T"
        ~doc:
          "Relative wall-time growth $(b,benchdiff) accepts per phase \
           (geomean across workloads) before failing, e.g. 0.5 = +50%. \
           Deterministic counters always require exact equality.")

let action_arg =
  Arg.(
    required
    & pos 0 (some (enum
        [ ("dump-ir", `Dump_ir); ("run", `Run); ("profile", `Profile);
          ("depgraph", `Depgraph); ("compile", `Compile); ("lint", `Lint);
          ("simulate", `Simulate); ("exec", `Exec); ("analyze", `Analyze);
          ("chaos", `Chaos); ("bench", `Bench); ("benchdiff", `Benchdiff);
          ("serve", `Serve) ])) None
    & info [] ~docv:"ACTION")

let domains_arg =
  Arg.(
    value & opt (some int) None
    & info [ "domains" ] ~docv:"N"
        ~doc:
          "Worker domains for $(b,exec) (default: the simulated machine's \
           processor count; 1 = serial in-order execution).")

let watchdog_ms_arg =
  Arg.(
    value & opt int 10_000
    & info [ "watchdog-ms" ] ~docv:"MS"
        ~doc:
          "Wall-clock watchdog for $(b,exec): no commit, squash, or \
           sequential progress for this long is a hang, reported as the \
           typed Specrt_stuck (exit 10).")

let max_aborts_arg =
  Arg.(
    value & opt int 64
    & info [ "max-aborts" ] ~docv:"N"
        ~doc:
          "Per-epoch squash budget for $(b,exec); exceeding it raises the \
           typed Abort_exhausted (exit 11).")

let record_arg =
  Arg.(
    value & opt (some string) None
    & info [ "record" ] ~docv:"FILE"
        ~doc:
          "Write $(b,exec)'s commit/violation/squash/signal event log to \
           FILE (JSONL, one event per line).")

let replay_arg =
  Arg.(
    value & opt (some string) None
    & info [ "replay" ] ~docv:"FILE"
        ~doc:
          "Replay a recorded event log: run serially in epoch order, \
           forcing the recorded squashes and violations at their commit \
           points, so a nondeterministic failure reproduces \
           deterministically.  A truncated FILE replays its prefix.")

let inject_arg =
  Arg.(
    value & opt_all string []
    & info [ "inject" ] ~docv:"SPEC"
        ~doc:
          "Inject a runtime fault into $(b,exec) (repeatable): \
           $(b,delay-commit:EPOCH:MS), $(b,yield:EPOCH:EVERY), \
           $(b,drop-wakeup:EPOCH:CHANNEL), $(b,crash:EPOCH[:persistent]).")

let exec_flag_arg =
  Arg.(
    value & flag
    & info [ "exec" ]
        ~doc:
          "With $(b,chaos): run the runtime-layer fault matrix through the \
           speculative executor instead of the simulator.")

(* The exec runtime knobs travel together. *)
let exec_opts_term =
  Term.(
    const (fun domains watchdog_ms max_aborts record replay injects ->
        (domains, watchdog_ms, max_aborts, record, replay, injects))
    $ domains_arg $ watchdog_ms_arg $ max_aborts_arg $ record_arg
    $ replay_arg $ inject_arg)

let serve_flag_arg =
  Arg.(
    value & flag
    & info [ "serve" ]
        ~doc:
          "With $(b,chaos): run the service-layer fault matrix through \
           $(b,mrvcc serve)'s request path. With $(b,bench): also run the \
           serve load phases (cold / warm / burst).")

let cache_dir_arg =
  Arg.(
    value & opt string "_mrvcc_cache"
    & info [ "cache-dir" ] ~docv:"DIR"
        ~doc:"Artifact cache directory for $(b,serve) (created if missing).")

let no_cache_arg =
  Arg.(
    value & flag
    & info [ "no-cache" ] ~doc:"Disable the $(b,serve) artifact cache.")

let queue_arg =
  Arg.(
    value & opt int 8
    & info [ "queue" ] ~docv:"N"
        ~doc:
          "Admission queue capacity for $(b,serve); arrivals past it are \
           shed with a typed rejection (exit 8).")

let rate_arg =
  Arg.(
    value & opt int 2
    & info [ "rate" ] ~docv:"N"
        ~doc:"Requests dispatched per admission tick for $(b,serve).")

let deadline_arg =
  Arg.(
    value & opt float 10.0
    & info [ "deadline" ] ~docv:"SECONDS"
        ~doc:
          "Default per-request wall deadline for $(b,serve); a request past \
           its whole retry schedule resolves to a typed deadline response \
           (exit 9).")

let retries_arg =
  Arg.(
    value & opt int 1
    & info [ "retries" ] ~docv:"N"
        ~doc:
          "Extra attempts per $(b,serve) request; attempt k runs under \
           deadline*2^k after a backoff*2^(k-1) sleep.")

let backoff_arg =
  Arg.(
    value & opt float 0.0
    & info [ "backoff" ] ~docv:"SECONDS"
        ~doc:"Base backoff between $(b,serve) attempts (deterministic, no \
              jitter).")

let no_timing_arg =
  Arg.(
    value & flag
    & info [ "no-timing" ]
        ~doc:
          "Omit wall_ns from $(b,serve) responses, making the response \
           stream byte-deterministic (used by the test fixtures).")

(* The serve service knobs travel together, like the resource limits. *)
let serve_opts_term =
  Term.(
    const (fun cache_dir no_cache queue rate deadline retries backoff
               no_timing ->
        (cache_dir, no_cache, queue, rate, deadline, retries, backoff,
         no_timing))
    $ cache_dir_arg $ no_cache_arg $ queue_arg $ rate_arg $ deadline_arg
    $ retries_arg $ backoff_arg $ no_timing_arg)

(* The four DESIGN §12 resource knobs travel together. *)
let limits_term =
  Term.(
    const (fun sig_buffer spec_lines fwd_queue policy ->
        (sig_buffer, spec_lines, fwd_queue, policy))
    $ sig_buffer_arg $ spec_lines_arg $ fwd_queue_arg $ overflow_policy_arg)

let main action file file2 bench input threshold mode mutate modes fuzz seed
    jobs max_cycles json out matrix capacity timeout retry limits sync_sched
    engine icode tolerance validate serve serve_opts exec_flag exec_opts =
  match action with
  | `Dump_ir -> cmd_dump_ir file bench input
  | `Run -> cmd_run file bench input
  | `Profile -> cmd_profile file bench input threshold
  | `Depgraph -> cmd_depgraph file bench input threshold
  | `Compile -> cmd_compile file bench input threshold sync_sched
  | `Lint -> cmd_lint file bench input threshold mutate
  | `Simulate ->
    cmd_simulate file bench input threshold mode mutate max_cycles limits
      sync_sched engine icode
  | `Exec -> cmd_exec file bench input threshold mode sync_sched exec_opts
  | `Analyze ->
    cmd_analyze file bench input threshold mode sync_sched json validate
      max_cycles
  | `Chaos ->
    if exec_flag then cmd_chaos_exec bench
    else if serve then cmd_chaos_serve bench jobs
    else
      cmd_chaos bench modes fuzz seed jobs max_cycles capacity timeout retry
        sync_sched
  | `Bench -> cmd_bench bench json out jobs matrix serve timeout retry
  | `Benchdiff -> cmd_benchdiff file file2 tolerance
  | `Serve -> cmd_serve file jobs out serve_opts

let cmd =
  let doc = "mini-C TLS compiler and simulator driver" in
  Cmd.v
    (Cmd.info "mrvcc" ~doc)
    Term.(
      const main $ action_arg $ file_arg $ file2_arg $ bench_arg $ input_arg
      $ threshold_arg $ mode_arg $ mutate_arg $ modes_arg $ fuzz_arg
      $ seed_arg $ jobs_arg $ max_cycles_arg $ json_arg $ out_arg
      $ matrix_arg $ capacity_arg $ timeout_arg $ retry_arg $ limits_term
      $ sync_sched_arg $ engine_arg $ icode_arg $ tolerance_arg
      $ validate_arg $ serve_flag_arg $ serve_opts_term $ exec_flag_arg
      $ exec_opts_term)

let () = exit (Cmd.eval cmd)
