// A pointer-varying group: the forwarded slot moves with head, so the
// compiler places eager signals after each member store and NULL guards
// at the latches.  Lint checks the guards cover every path.
int slots[128];
int head;

int work(int x) {
  int j;
  int t;
  t = x;
  for (j = 0; j < 9; j = j + 1) {
    t = t + ((t << 1) ^ j) % 71;
  }
  return t;
}

void main() {
  int i;
  int v;
  for (i = 0; i < 40; i = i + 1) {
    v = slots[head % 128];
    slots[(head + i) % 128] = work(v + i);
    if (i % 2 == 0) {
      head = head + 1;
    }
  }
  print(head + slots[0]);
}
