// Only registers carry values between epochs: i and s are locals updated
// by constant steps, so the region forwards them over scalar channels
// (hoisted to the epoch header) and needs no memory groups.
int a[64];

int work(int x) {
  int j;
  int t;
  t = x;
  for (j = 0; j < 8; j = j + 1) {
    t = t + ((t << 2) ^ j) % 61;
  }
  return t;
}

void main() {
  int i;
  int s;
  s = 7;
  for (i = 0; i < 40; i = i + 1) {
    a[i % 64] = work(s + i);
    s = s + 3;
  }
  print(s + a[5]);
}
