// A statically-addressed memory-resident value: every epoch reads the
// previous epoch's g and writes the next one.  Memsync forwards it over
// one memory channel (wait at the header, signal at the final store);
// `mrvcc lint` verifies the placement.
int g;
int a[64];

int work(int x) {
  int j;
  int t;
  t = x;
  for (j = 0; j < 8; j = j + 1) {
    t = t + ((t << 1) ^ j) % 53;
  }
  return t;
}

void main() {
  int i;
  int v;
  for (i = 0; i < 30; i = i + 1) {
    v = g;
    a[i % 64] = work(v + i);
    g = v + 1;
  }
  print(g);
}
