(* Differential suite for the real speculative runtime (DESIGN §16).

   Specrt runs compiled epochs concurrently on OCaml 5 domains, so its
   violation/squash counters are scheduling-dependent — but its committed
   observables must not be.  Every check here is differential:

   - output and final memory byte-identical to sequential execution,
     always, on every workload and a generated-program corpus;
   - the deterministic observables (epochs committed, region-instance
     activations) identical to the Tls.Sim simulator;
   - repeated runs (10 distinct perturbation seeds per workload, via the
     @specrt-diff alias) to flush real races rather than assume their
     absence;
   - robustness: injected runtime faults end in absorbed recovery or the
     right typed error, never a hang or a process death;
   - record/replay: a real nondeterministic violation recorded from a
     racy run is reproduced deterministically from its log, twice. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let compile_workload ?(sync_sched = false) (w : Workloads.Workload.t) =
  Tlscore.Pipeline.compile ~sync_sched ~source:w.Workloads.Workload.source
    ~profile_input:w.Workloads.Workload.train_input
    ~memory_sync:
      (Tlscore.Pipeline.Profiled
         { dep_input = w.Workloads.Workload.train_input; threshold = 0.05 })
    ()

let compile_src src input =
  Tlscore.Pipeline.compile ~lint:false ~source:src ~profile_input:input
    ~memory_sync:
      (Tlscore.Pipeline.Profiled { dep_input = input; threshold = 0.05 })
    ()

(* Sequential ground truth straight from the interpreter. *)
let sequential_ref (code : Runtime.Code.t) input =
  let mem = Runtime.Memory.create () in
  Runtime.Memory.store_all mem code.Runtime.Code.initial_stores;
  let output = Runtime.Thread.run_sequential code ~input mem in
  (output, mem)

let exec_opts ?(domains = 4) ?seed ?(watchdog_ms = 30_000) cfg =
  {
    (Specrt.default_opts cfg) with
    Specrt.domains;
    watchdog_ms;
    perturb_seed = seed;
  }

(* One specrt run checked against sequential execution (always) and the
   simulator's deterministic observables (when [sim] is given). *)
let exec_diff label ?sim cfg opts (code : Runtime.Code.t) input =
  let r = Specrt.run ~opts cfg code ~input in
  let seq_out, seq_mem = sequential_ref code input in
  Alcotest.(check (list int)) (label ^ ": output = sequential") seq_out
    r.Specrt.r_output;
  check_bool
    (label ^ ": final memory = sequential")
    true
    (Runtime.Memory.equal seq_mem r.Specrt.r_final_memory);
  (match sim with
  | None -> ()
  | Some (s : Tls.Simstats.result) ->
    check_int
      (label ^ ": epochs committed = simulator")
      s.Tls.Simstats.epochs_committed r.Specrt.r_epochs_committed;
    check_bool
      (label ^ ": region instances = simulator")
      true
      (s.Tls.Simstats.region_instances = r.Specrt.r_region_instances));
  r

(* ------------------------------------------------------------------ *)
(* 15-workload differential, 10 distinct perturbation seeds each       *)
(* ------------------------------------------------------------------ *)

let workload_repeated (w : Workloads.Workload.t) () =
  let name = w.Workloads.Workload.name in
  let input = w.Workloads.Workload.ref_input in
  let compiled = compile_workload w in
  let code = compiled.Tlscore.Pipeline.code in
  let sim = Tls.Sim.run Tls.Config.c_mode code ~input () in
  (* The simulator baseline must not depend on the icode encoding: pin
     both before diffing the runtime against it. *)
  let sim_no_icode =
    Tls.Sim.run
      { Tls.Config.c_mode with Tls.Config.icode = false }
      code ~input ()
  in
  Alcotest.(check string)
    (name ^ ": simulator fingerprint, icode on = off")
    (Tls.Simstats.fingerprint sim)
    (Tls.Simstats.fingerprint sim_no_icode);
  for seed = 1 to 10 do
    ignore
      (exec_diff
         (Printf.sprintf "%s/seed%d" name seed)
         ~sim Tls.Config.c_mode
         (exec_opts ~seed Tls.Config.c_mode)
         code input)
  done;
  (* Serial mode (domains = 1) must agree too. *)
  ignore
    (exec_diff (name ^ "/serial") ~sim Tls.Config.c_mode
       (exec_opts ~domains:1 Tls.Config.c_mode)
       code input);
  (* U mode: no compiler memory sync, so real cross-epoch races and
     rollbacks are on the hot path. *)
  ignore
    (exec_diff (name ^ "/umode") Tls.Config.u_mode
       (exec_opts ~seed:99 Tls.Config.u_mode)
       code input)

(* ------------------------------------------------------------------ *)
(* Generated-program corpus                                            *)
(* ------------------------------------------------------------------ *)

let proggen_corpus =
  QCheck.Test.make ~count:100
    ~name:"proggen: specrt output+memory = sequential, commits = simulator"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let source, input = Faults.Proggen.generate ~seed in
      let compiled = compile_src source input in
      let code = compiled.Tlscore.Pipeline.code in
      let r =
        Specrt.run
          ~opts:(exec_opts ~domains:4 ~seed Tls.Config.c_mode)
          Tls.Config.c_mode code ~input
      in
      let seq_out, seq_mem = sequential_ref code input in
      let sim = Tls.Sim.run Tls.Config.c_mode code ~input () in
      r.Specrt.r_output = seq_out
      && Runtime.Memory.equal seq_mem r.Specrt.r_final_memory
      && r.Specrt.r_epochs_committed = sim.Tls.Simstats.epochs_committed
      && r.Specrt.r_region_instances = sim.Tls.Simstats.region_instances)

(* ------------------------------------------------------------------ *)
(* Robustness: typed errors, containment, budgets                      *)
(* ------------------------------------------------------------------ *)

(* Serial scalar chain through a global: every epoch needs its
   predecessor's store (same program the sim fault suite pins on). *)
let chain_src =
  "int g;\n\
   int out[64];\n\
   int work(int x) { int j; int t; t = x; for (j = 0; j < 10 + x % 7; j = \
   j + 1) { t = t + ((t << 1) ^ j) % 53; } return t; }\n\
   void main() {\n\
  \  int i; int v;\n\
  \  for (i = 0; i < 40; i = i + 1) {\n\
  \    v = g;\n\
  \    out[i % 64] = work(v + i);\n\
  \    g = v + 1;\n\
  \  }\n\
  \  print(g);\n\
  \  print(out[5]);\n\
   }"

let chain_code () =
  (compile_src chain_src [||]).Tlscore.Pipeline.code

let transient_crash_absorbed () =
  let code = chain_code () in
  let opts =
    {
      (exec_opts Tls.Config.c_mode) with
      Specrt.faults = [ Specrt.Crash_epoch { epoch = 1; persistent = false } ];
    }
  in
  let r = exec_diff "crash/transient" Tls.Config.c_mode opts code [||] in
  check_bool "crash was contained (>=1 squash recorded)" true
    (List.exists
       (function
         | { Specrt.ev_kind = Specrt.Ev_squash "crash-injected"; _ } -> true
         | _ -> false)
       r.Specrt.r_events)

let persistent_crash_exhausts_budget () =
  let code = chain_code () in
  let opts =
    {
      (exec_opts Tls.Config.c_mode) with
      Specrt.max_aborts = 4;
      faults = [ Specrt.Crash_epoch { epoch = 1; persistent = true } ];
    }
  in
  match Specrt.run ~opts Tls.Config.c_mode code ~input:[||] with
  | _ -> Alcotest.fail "expected Abort_exhausted"
  | exception Specrt.Abort_exhausted { index; aborts; max_aborts; _ } ->
    check_int "budget epoch" 1 index;
    check_int "budget limit" 4 max_aborts;
    check_bool "aborts exceed budget" true (aborts > max_aborts)

let delayed_commit_absorbed () =
  let code = chain_code () in
  let opts =
    {
      (exec_opts ~watchdog_ms:20_000 Tls.Config.c_mode) with
      Specrt.faults = [ Specrt.Delay_commit { epoch = 0; ms = 120 } ];
    }
  in
  ignore (exec_diff "delay/absorbed" Tls.Config.c_mode opts code [||])

let delayed_commit_past_watchdog_is_stuck () =
  let code = chain_code () in
  let opts =
    {
      (exec_opts ~watchdog_ms:250 Tls.Config.c_mode) with
      Specrt.faults = [ Specrt.Delay_commit { epoch = 0; ms = 60_000 } ];
    }
  in
  match Specrt.run ~opts Tls.Config.c_mode code ~input:[||] with
  | _ -> Alcotest.fail "expected Specrt_stuck"
  | exception Specrt.Specrt_stuck { watchdog_ms; detail } ->
    check_int "reports the configured watchdog" 250 watchdog_ms;
    check_bool "diagnostic names the wedged instance" true
      (String.length detail > 0)

let dropped_wakeup_self_heals () =
  let code = chain_code () in
  let opts =
    {
      (exec_opts Tls.Config.c_mode) with
      Specrt.faults = [ Specrt.Drop_wakeup { epoch = 2; channel = 0 } ];
    }
  in
  ignore (exec_diff "drop-wakeup/absorbed" Tls.Config.c_mode opts code [||])

let stolen_timeslice_absorbed () =
  let code = chain_code () in
  let opts =
    {
      (exec_opts Tls.Config.c_mode) with
      Specrt.faults = [ Specrt.Yield_steps { epoch = 1; every = 2 } ];
    }
  in
  ignore (exec_diff "yield/absorbed" Tls.Config.c_mode opts code [||])

(* ------------------------------------------------------------------ *)
(* Record/replay: a real nondeterministic violation, reproduced        *)
(* ------------------------------------------------------------------ *)

let squash_sig ev =
  match ev.Specrt.ev_kind with
  | Specrt.Ev_violation _ ->
    Some (ev.Specrt.ev_instance, ev.Specrt.ev_index, ev.Specrt.ev_attempt, 'v')
  | Specrt.Ev_squash _ ->
    Some (ev.Specrt.ev_instance, ev.Specrt.ev_index, ev.Specrt.ev_attempt, 's')
  | Specrt.Ev_commit | Specrt.Ev_signal _ -> None

let committed_epochs events =
  List.filter_map
    (fun ev ->
      match ev.Specrt.ev_kind with
      | Specrt.Ev_commit -> Some (ev.Specrt.ev_instance, ev.Specrt.ev_index)
      | _ -> None)
    events

(* Rollback signatures restricted to epochs the recorded run committed:
   the replay runs epochs in order and never spawns the wrong-path tail
   a racy run may have squashed past the winner.  Sorted, because the
   *global* observation order of rollbacks across epochs is itself
   scheduling noise (a cascade lands on its victims at their own pace);
   what replay preserves is which epoch rolled back, at which attempt,
   for violation vs plain squash. *)
let replayable_squashes events =
  let committed = committed_epochs events in
  List.sort compare
    (List.filter
       (fun (i, k, _, _) -> List.mem (i, k) committed)
       (List.filter_map squash_sig events))

let record_replay_reproduces_violation () =
  (* U mode: memory-resident dependences are unsynchronized, so
     cross-epoch races produce genuine violations under real
     concurrency. *)
  let code = chain_code () in
  let cfg = Tls.Config.u_mode in
  (* Keep only runs whose violation hit an epoch that went on to commit:
     a violation on a wrong-path epoch past the winner is real but
     unreproducible by an in-order replay (the replay never spawns it). *)
  let has_replayable_violation r =
    List.exists
      (fun (_, _, _, kind) -> kind = 'v')
      (replayable_squashes r.Specrt.r_events)
  in
  let rec record tries =
    if tries = 0 then
      failwith "no replayable violation surfaced in 40 racy runs (suspicious)"
    else begin
      let r =
        Specrt.run
          ~opts:(exec_opts ~domains:4 ~seed:tries cfg)
          cfg code ~input:[||]
      in
      if has_replayable_violation r then r else record (tries - 1)
    end
  in
  let recorded = record 40 in
  check_bool "recorded run saw a real violation" true
    (recorded.Specrt.r_violations > 0);
  (* Round-trip the log through its on-disk JSONL form. *)
  let path = Filename.temp_file "specrt" ".jsonl" in
  Specrt.write_log path recorded.Specrt.r_events;
  let log = Specrt.read_log path in
  Sys.remove path;
  check_int "log round-trips" (List.length recorded.Specrt.r_events)
    (List.length log);
  let replay_once () =
    Specrt.run
      ~opts:{ (exec_opts cfg) with Specrt.replay = Some log }
      cfg code ~input:[||]
  in
  let r1 = replay_once () in
  let r2 = replay_once () in
  let seq_out, seq_mem = sequential_ref code [||] in
  Alcotest.(check (list int)) "replay output = sequential" seq_out
    r1.Specrt.r_output;
  check_bool "replay memory = sequential" true
    (Runtime.Memory.equal seq_mem r1.Specrt.r_final_memory);
  (* The recorded rollbacks (for epochs that committed) are reproduced
     exactly: same epoch, same attempt, violation vs plain squash. *)
  check_bool "replay reproduces the recorded rollbacks" true
    (replayable_squashes log = replayable_squashes r1.Specrt.r_events);
  check_bool "replay reproduces at least one violation" true
    (r1.Specrt.r_violations > 0);
  (* And the replay itself is deterministic, run to run. *)
  check_bool "replay is deterministic" true
    (List.map squash_sig r1.Specrt.r_events
     = List.map squash_sig r2.Specrt.r_events
    && r1.Specrt.r_output = r2.Specrt.r_output);
  (* Shrinking story: a truncated log still replays (its prefix). *)
  let half =
    List.filteri
      (fun i _ -> i < List.length log / 2)
      log
  in
  let r3 =
    Specrt.run
      ~opts:{ (exec_opts cfg) with Specrt.replay = Some half }
      cfg code ~input:[||]
  in
  check_bool "truncated log still replays to sequential output" true
    (r3.Specrt.r_output = seq_out)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "specrt"
    [
      ( "workloads",
        List.map
          (fun (w : Workloads.Workload.t) ->
            Alcotest.test_case w.Workloads.Workload.name `Quick
              (workload_repeated w))
          Workloads.Registry.all );
      ("proggen", [ QCheck_alcotest.to_alcotest proggen_corpus ]);
      ( "robustness",
        [
          Alcotest.test_case "transient crash contained" `Quick
            transient_crash_absorbed;
          Alcotest.test_case "persistent crash exhausts budget" `Quick
            persistent_crash_exhausts_budget;
          Alcotest.test_case "delayed commit absorbed" `Quick
            delayed_commit_absorbed;
          Alcotest.test_case "delayed commit past watchdog is stuck" `Quick
            delayed_commit_past_watchdog_is_stuck;
          Alcotest.test_case "dropped wakeup self-heals" `Quick
            dropped_wakeup_self_heals;
          Alcotest.test_case "stolen timeslice absorbed" `Quick
            stolen_timeslice_absorbed;
        ] );
      ( "replay",
        [
          Alcotest.test_case "record/replay reproduces a violation" `Quick
            record_replay_reproduces_violation;
        ] );
    ]
