(* Compiler-pass tests: region selection, scalar synchronization placement,
   dependence grouping, procedure cloning, memory-sync insertion.

   Every transformation is additionally validated by running the
   transformed program sequentially (sync instructions are no-ops there)
   and comparing against the original output. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let seq_output prog input =
  let code = Runtime.Code.of_prog prog in
  let mem = Runtime.Memory.create () in
  Runtime.Thread.run_sequential code ~input mem

let check_semantics_preserved name src input (transformed : Ir.Prog.t) =
  let original = Ir.Lower.compile_source src in
  Alcotest.(check (list int))
    (name ^ ": transformed == original")
    (seq_output original input) (seq_output transformed input)

(* ------------------------------------------------------------------ *)
(* Selection                                                           *)
(* ------------------------------------------------------------------ *)

let selection_filters () =
  (* One fat parallel loop, one tiny loop (too few instrs/epoch), one
     accumulator-serialized loop. *)
  let src =
    "int a[512];\n\
     int work(int x) { int j; int t; t = x; for (j = 0; j < 9; j = j + 1) \
     { t = t + ((t << 1) ^ j) % 97; } return t; }\n\
     void main() {\n\
    \  int i; int s; s = 0;\n\
    \  for (i = 0; i < 100; i = i + 1) { a[i % 512] = work(i); }   // fat\n\
    \  for (i = 0; i < 100; i = i + 1) { s = s + 1; }              // tiny\n\
    \  for (i = 0; i < 100; i = i + 1) { s = s + work(i); }        // serialized\n\
    \  print(s);\n\
     }"
  in
  let prog = Ir.Lower.compile_source src in
  let profile = Profiler.Runner.run prog ~input:[||] ~watch:[] in
  let cands = Tlscore.Selection.candidates prog profile in
  let selected = Tlscore.Selection.select prog profile in
  (* Only the fat loop (and work's inner loop is nested within it) should
     be selected; the tiny and serialized loops must not. *)
  check_bool "at least one candidate" true (cands <> []);
  (* Only the fat loop is selected: the tiny and serialized loops fail
     their filters, and work's inner loop always runs nested inside
     another loop instance (where it would execute sequentially), so the
     nesting filter drops it too. *)
  Alcotest.(check (list string)) "only main's fat loop" [ "main" ]
    (List.map
       (fun (k : Profiler.Profile.loop_key) -> k.Profiler.Profile.lk_func)
       selected)

let selection_prefers_outer () =
  let src =
    "int a[256];\n\
     void main() {\n\
    \  int i; int j;\n\
    \  for (i = 0; i < 40; i = i + 1) {\n\
    \    for (j = 0; j < 40; j = j + 1) { a[(i * 40 + j) % 256] = i + j * \
     3; }\n\
    \  }\n\
    \  print(a[0]);\n\
     }"
  in
  let prog = Ir.Lower.compile_source src in
  let profile = Profiler.Runner.run prog ~input:[||] ~watch:[] in
  let selected = Tlscore.Selection.select prog profile in
  check_int "no overlapping selection" 1 (List.length selected)

let selection_rejects_mostly_nested () =
  (* A helper loop that only ever runs inside another loop's instances is
     not selected, even though it passes the size filters. *)
  let src =
    "int a[512];\n\
     int fill(int base) { int j; for (j = 0; j < 30; j = j + 1) { a[(base \
     + j * 7) % 512] = base + j + a[(base + j * 11) % 512] % 5; } return \
     a[base % 512]; }\n\
     void main() { int i; int s; s = 0; for (i = 0; i < 40; i = i + 1) { \
     a[i % 512] = fill(i * 3) + i; } print(a[0]); }"
  in
  let prog = Ir.Lower.compile_source src in
  let profile = Profiler.Runner.run prog ~input:[||] ~watch:[] in
  let selected = Tlscore.Selection.select prog profile in
  check_bool "outer selected" true
    (List.exists
       (fun (k : Profiler.Profile.loop_key) -> k.Profiler.Profile.lk_func = "main")
       selected);
  check_bool "nested fill loop rejected" true
    (not
       (List.exists
          (fun (k : Profiler.Profile.loop_key) -> k.Profiler.Profile.lk_func = "fill")
          selected));
  (* Called from top level instead, the same loop is selectable. *)
  let src2 =
    "int a[512];\n\
     int fill(int base) { int j; for (j = 0; j < 300; j = j + 1) { a[(base \
     + j * 7) % 512] = base + j + a[(base + j * 11) % 512] % 5; } return \
     a[base % 512]; }\n\
     void main() { int s; s = fill(3); print(s); }"
  in
  let prog2 = Ir.Lower.compile_source src2 in
  let profile2 = Profiler.Runner.run prog2 ~input:[||] ~watch:[] in
  check_bool "top-level fill loop selected" true
    (List.exists
       (fun (k : Profiler.Profile.loop_key) -> k.Profiler.Profile.lk_func = "fill")
       (Tlscore.Selection.select prog2 profile2))

let selection_rejects_serialized () =
  let src =
    "int work(int x) { int j; int t; t = x; for (j = 0; j < 9; j = j + 1) \
     { t = t + ((t << 1) ^ j) % 97; } return t; }\n\
     void main() { int i; int s; s = 0; for (i = 0; i < 50; i = i + 1) { s \
     = s + work(i); } print(s); }"
  in
  let prog = Ir.Lower.compile_source src in
  let profile = Profiler.Runner.run prog ~input:[||] ~watch:[] in
  let key =
    List.find
      (fun (k : Profiler.Profile.loop_key) -> k.Profiler.Profile.lk_func = "main")
      (Profiler.Runner.all_loops prog)
  in
  check_bool "serialized detected" true (Tlscore.Regions.scalar_serialized prog key);
  check_bool "not selected" true
    (not (List.mem key (Tlscore.Selection.select prog profile)))

(* ------------------------------------------------------------------ *)
(* Scalar synchronization                                              *)
(* ------------------------------------------------------------------ *)

let region_for src =
  let prog = Ir.Lower.compile_source src in
  let key =
    List.find
      (fun (k : Profiler.Profile.loop_key) -> k.Profiler.Profile.lk_func = "main")
      (Profiler.Runner.all_loops prog)
  in
  let region, infos = Tlscore.Regions.create prog key in
  (prog, region, infos)

let count_kind f pred =
  let n = ref 0 in
  Ir.Func.iter_instrs f (fun _ i -> if pred i.Ir.Instr.kind then incr n);
  !n

let scalar_hoisted_induction () =
  let src =
    "int a[64]; void main() { int i; for (i = 0; i < 10; i = i + 1) { a[i \
     % 64] = i * 2; } print(a[3]); }"
  in
  let prog, region, infos = region_for src in
  (match infos with
  | [ si ] ->
    check_bool "induction hoisted" true
      (si.Tlscore.Regions.si_placement = Tlscore.Regions.Hoisted)
  | _ -> Alcotest.fail "expected exactly one carried scalar");
  let f = Ir.Prog.func prog "main" in
  check_int "one wait" 1
    (count_kind f (function Ir.Instr.Wait_scalar _ -> true | _ -> false));
  check_int "one signal" 1
    (count_kind f (function Ir.Instr.Signal_scalar _ -> true | _ -> false));
  (* The signal must be in the header block (hoisted to the top). *)
  let header_block = Ir.Func.block f region.Ir.Region.header in
  check_bool "signal in header" true
    (List.exists
       (fun (i : Ir.Instr.t) ->
         match i.Ir.Instr.kind with Ir.Instr.Signal_scalar _ -> true | _ -> false)
       header_block.Ir.Func.instrs);
  check_semantics_preserved "hoisted" src [||] prog

let scalar_eager_placement () =
  (* s depends on a call result: not hoistable, but single def dominating
     the latch -> Eager (signal right after the def). *)
  let src =
    "int f(int x) { return x + 1; } int sink[16]; void main() { int i; int \
     s; s = 0; for (i = 0; i < 8; i = i + 1) { s = f(s); sink[i % 16] = s; \
     } print(s); }"
  in
  let prog, _region, infos = region_for src in
  let placements =
    List.map (fun si -> si.Tlscore.Regions.si_placement) infos
  in
  check_bool "has eager" true (List.mem Tlscore.Regions.Eager placements);
  check_semantics_preserved "eager" src [||] prog

let scalar_at_latch_placement () =
  (* Conditional definition: cannot hoist, cannot signal eagerly. *)
  let src =
    "int a[32]; void main() { int i; int last; last = 0; for (i = 0; i < 8; \
     i = i + 1) { if (i % 3 == 0) { last = i; } a[i % 32] = last; } \
     print(last); }"
  in
  let prog, _region, infos = region_for src in
  let placements = List.map (fun si -> si.Tlscore.Regions.si_placement) infos in
  check_bool "has at-latch" true (List.mem Tlscore.Regions.At_latch placements);
  check_semantics_preserved "at latch" src [||] prog

let scalar_channels_distinct () =
  let src =
    "int a[16]; void main() { int i; int j; j = 100; for (i = 0; i < 6; i \
     = i + 1) { a[i % 16] = j; j = j - 1; } print(j); }"
  in
  let _prog, region, infos = region_for src in
  check_int "two carried scalars" 2 (List.length infos);
  let chans =
    List.sort_uniq compare
      (List.map (fun si -> si.Tlscore.Regions.si_channel) infos)
  in
  check_int "distinct channels" 2 (List.length chans);
  check_int "region records them" 2
    (List.length region.Ir.Region.scalar_channels)

(* ------------------------------------------------------------------ *)
(* Unrolling                                                           *)
(* ------------------------------------------------------------------ *)

let unroll_src =
  "int a[64];\n\
   void main() { int i; int s; for (i = 0; i < 37; i = i + 1) { a[i % 64] \
   = i * 3; } s = 0; for (i = 0; i < 64; i = i + 1) { s = s + a[i]; } \
   print(s); }"

let main_loop_key prog =
  List.find
    (fun (k : Profiler.Profile.loop_key) -> k.Profiler.Profile.lk_func = "main")
    (Profiler.Runner.all_loops prog)

let unroll_preserves_semantics () =
  List.iter
    (fun factor ->
      let prog = Ir.Lower.compile_source unroll_src in
      let key = main_loop_key prog in
      let added = Tlscore.Unroll.apply prog key ~factor in
      check_bool "blocks added" true (added > 0);
      check_semantics_preserved
        (Printf.sprintf "unroll x%d" factor)
        unroll_src [||] prog)
    [ 2; 3; 4 ]

let unroll_amortizes_epochs () =
  (* Header arrivals drop by the unroll factor. *)
  let count_epochs prog =
    let key = main_loop_key prog in
    let p = Profiler.Runner.run prog ~input:[||] ~watch:[] in
    (Profiler.Profile.stats p key).Profiler.Profile.iterations
  in
  let base = count_epochs (Ir.Lower.compile_source unroll_src) in
  let prog = Ir.Lower.compile_source unroll_src in
  ignore (Tlscore.Unroll.apply prog (main_loop_key prog) ~factor:2);
  let unrolled = count_epochs prog in
  check_bool "about half the epochs" true
    (unrolled <= (base / 2) + 2 && unrolled >= (base / 2) - 2)

let unroll_keeps_early_exit () =
  let src =
    "int a[64]; void main() { int i; for (i = 0; i < 1000; i = i + 1) { \
     a[i % 64] = i; if (i == 13) { break; } } print(i); print(a[13]); }"
  in
  let prog = Ir.Lower.compile_source src in
  ignore (Tlscore.Unroll.apply prog (main_loop_key prog) ~factor:4);
  check_semantics_preserved "unrolled break" src [||] prog

let unroll_factor_suggestion () =
  (* A tiny-epoch loop suggests a factor > 1, a fat one suggests 1. *)
  let src =
    "int a[64];\n\
     int work(int x) { int j; int t; t = x; for (j = 0; j < 30; j = j + 1) \
     { t = t + ((t << 1) ^ j) % 53; } return t; }\n\
     void main() { int i; for (i = 0; i < 30; i = i + 1) { a[i % 64] = i; } \
     for (i = 0; i < 30; i = i + 1) { a[i % 64] = work(i); } print(a[7]); }"
  in
  let prog = Ir.Lower.compile_source src in
  let p = Profiler.Runner.run prog ~input:[||] ~watch:[] in
  let keys =
    List.filter
      (fun (k : Profiler.Profile.loop_key) -> k.Profiler.Profile.lk_func = "main")
      (Profiler.Runner.all_loops prog)
  in
  let factors =
    List.map (fun k -> Tlscore.Unroll.suggested_factor p k) keys
  in
  check_bool "tiny loop unrolled" true (List.exists (fun f -> f >= 2) factors);
  check_bool "fat loop left alone" true (List.mem 1 factors)

let unroll_in_pipeline_absorbs_deps () =
  (* A distance-1 dependence between source iterations becomes partially
     intra-epoch after x2 unrolling: the dependence count per (unrolled)
     epoch stays frequent but the epoch count halves. *)
  let src =
    "int g; int a[64]; void main() { int i; for (i = 0; i < 40; i = i + 1) \
     { g = g + a[i % 64] + (a[(i * 3) % 64] >> 1) + 1; } print(g); }"
  in
  let with_u =
    Tlscore.Pipeline.compile ~source:src ~profile_input:[||]
      ~memory_sync:(Tlscore.Pipeline.Profiled { dep_input = [||]; threshold = 0.05 })
      ()
  in
  let without_u =
    Tlscore.Pipeline.compile ~unroll:false ~source:src ~profile_input:[||]
      ~memory_sync:(Tlscore.Pipeline.Profiled { dep_input = [||]; threshold = 0.05 })
      ()
  in
  let epochs c =
    match c.Tlscore.Pipeline.dep_profiles with
    | (_, dp) :: _ -> dp.Profiler.Profile.total_epochs
    | [] -> 0
  in
  check_bool "unroll applied" true
    (List.exists (fun (_, f) -> f > 1) with_u.Tlscore.Pipeline.unroll_factors);
  check_bool "fewer epochs after unrolling" true
    (epochs with_u < epochs without_u)

(* ------------------------------------------------------------------ *)
(* Grouping                                                            *)
(* ------------------------------------------------------------------ *)

let access iid ctx : Profiler.Profile.access = { Profiler.Profile.a_iid = iid; a_ctx = ctx }

let dep p c : Profiler.Profile.dep = { Profiler.Profile.producer = p; consumer = c }

let grouping_components () =
  (* store1 -> load1, store2 -> load1 (shared consumer: one group);
     store3 -> load2 separately. *)
  let deps =
    [
      dep (access 1 []) (access 10 []);
      dep (access 2 []) (access 10 []);
      dep (access 3 []) (access 11 []);
    ]
  in
  match Tlscore.Grouping.groups deps with
  | [ g1; g2 ] ->
    let sizes =
      List.sort compare
        [
          List.length g1.Tlscore.Grouping.g_loads + List.length g1.Tlscore.Grouping.g_stores;
          List.length g2.Tlscore.Grouping.g_loads + List.length g2.Tlscore.Grouping.g_stores;
        ]
    in
    Alcotest.(check (list int)) "group sizes" [ 2; 3 ] sizes
  | gs -> Alcotest.fail (Printf.sprintf "expected 2 groups, got %d" (List.length gs))

let grouping_context_distinguishes () =
  (* Same iid with different contexts are different vertices. *)
  let deps =
    [ dep (access 1 [ 5 ]) (access 2 []); dep (access 1 [ 6 ]) (access 3 []) ]
  in
  check_int "two groups" 2 (List.length (Tlscore.Grouping.groups deps))

let grouping_empty () =
  check_int "no deps, no groups" 0 (List.length (Tlscore.Grouping.groups []))

(* ------------------------------------------------------------------ *)
(* Cloning                                                             *)
(* ------------------------------------------------------------------ *)

let find_call_iids prog fname callee =
  let f = Ir.Prog.func prog fname in
  let acc = ref [] in
  Ir.Func.iter_instrs f (fun _ i ->
      match i.Ir.Instr.kind with
      | Ir.Instr.Call (_, name, _) when String.equal name callee ->
        acc := i.Ir.Instr.iid :: !acc
      | _ -> ());
  List.rev !acc

let find_store_iid prog fname =
  let f = Ir.Prog.func prog fname in
  let acc = ref None in
  Ir.Func.iter_instrs f (fun _ i ->
      match i.Ir.Instr.kind with
      | Ir.Instr.Store (_, _) when !acc = None -> acc := Some i.Ir.Instr.iid
      | _ -> ());
  Option.get !acc

let cloning_src =
  "int g;\n\
   void bump() { g = g + 1; }\n\
   void via() { bump(); }\n\
   void main() { int i; for (i = 0; i < 4; i = i + 1) { via(); bump(); } \
   print(g); }"

let cloning_redirects_path () =
  let prog = Ir.Lower.compile_source cloning_src in
  let via_call = List.hd (find_call_iids prog "main" "via") in
  let bump_in_via = List.hd (find_call_iids prog "via" "bump") in
  let store_in_bump = find_store_iid prog "bump" in
  let acc = access store_in_bump [ via_call; bump_in_via ] in
  let result =
    Tlscore.Cloning.apply prog ~region_func:"main" ~accesses:[ acc ]
  in
  check_int "two clones (via, bump)" 2 result.Tlscore.Cloning.clones_created;
  (* main now calls a clone of via... *)
  check_int "original via no longer called" 0
    (List.length (find_call_iids prog "main" "via"));
  (* ...and the resolved access lives in a clone of bump. *)
  let clone_fname, new_iid = result.Tlscore.Cloning.resolve acc in
  check_bool "resolved in a clone" true (clone_fname <> "bump");
  check_bool "fresh iid" true (new_iid <> store_in_bump);
  (* The direct bump() call in main is untouched. *)
  check_int "direct bump call kept" 1
    (List.length (find_call_iids prog "main" "bump"));
  check_semantics_preserved "cloning" cloning_src [||] prog

let cloning_shares_prefixes () =
  let prog = Ir.Lower.compile_source cloning_src in
  let via_call = List.hd (find_call_iids prog "main" "via") in
  let bump_in_via = List.hd (find_call_iids prog "via" "bump") in
  let store_in_bump = find_store_iid prog "bump" in
  (* Two accesses sharing the [via_call] prefix: via cloned once. *)
  let a1 = access store_in_bump [ via_call; bump_in_via ] in
  let a2 = access (store_in_bump + 0) [ via_call; bump_in_via ] in
  let result =
    Tlscore.Cloning.apply prog ~region_func:"main" ~accesses:[ a1; a2 ]
  in
  check_int "shared prefix" 2 result.Tlscore.Cloning.clones_created

let cloning_empty_ctx_identity () =
  let prog = Ir.Lower.compile_source cloning_src in
  let store = find_store_iid prog "bump" in
  let acc = access store [] in
  let result = Tlscore.Cloning.apply prog ~region_func:"bump" ~accesses:[ acc ] in
  check_int "no clones" 0 result.Tlscore.Cloning.clones_created;
  let fname, iid = result.Tlscore.Cloning.resolve acc in
  Alcotest.(check string) "same function" "bump" fname;
  check_int "same iid" store iid

(* ------------------------------------------------------------------ *)
(* Memory synchronization                                              *)
(* ------------------------------------------------------------------ *)

let memsync_src =
  "int g;\n\
   int pad0;\n\
   int work(int x) { int j; int t; t = x; for (j = 0; j < 8; j = j + 1) { \
   t = t + ((t << 1) ^ j) % 53; } return t; }\n\
   int a[64];\n\
   void main() {\n\
  \  int i; int v;\n\
  \  for (i = 0; i < 30; i = i + 1) {\n\
  \    v = g;\n\
  \    a[i % 64] = work(v + i);\n\
  \    g = v + 1;\n\
  \  }\n\
  \  print(g);\n\
   }"

let compile_with_memsync ?(threshold = 0.05) src input =
  Tlscore.Pipeline.compile ~source:src ~profile_input:input
    ~memory_sync:(Tlscore.Pipeline.Profiled { dep_input = input; threshold })
    ()

let memsync_inserts_sync () =
  let c = compile_with_memsync memsync_src [||] in
  match c.Tlscore.Pipeline.mem_stats with
  | [ (_, stats) ] ->
    check_int "one group" 1 stats.Tlscore.Memsync.ms_groups;
    check_int "static group" 1 stats.Tlscore.Memsync.ms_static_groups;
    check_int "one sync load" 1 stats.Tlscore.Memsync.ms_sync_loads;
    check_bool "signals placed" true (stats.Tlscore.Memsync.ms_sync_stores >= 1);
    let f = Ir.Prog.func c.Tlscore.Pipeline.prog "main" in
    check_int "wait before load" 1
      (count_kind f (function Ir.Instr.Wait_mem _ -> true | _ -> false));
    check_int "sync load replaces load" 1
      (count_kind f (function Ir.Instr.Sync_load _ -> true | _ -> false));
    check_semantics_preserved "memsync" memsync_src [||] c.Tlscore.Pipeline.prog
  | l -> Alcotest.fail (Printf.sprintf "expected 1 region with stats, got %d" (List.length l))

let memsync_threshold_excludes () =
  (* A dependence in ~3% of epochs is ignored at the 5% threshold but
     synchronized at 1%. *)
  let src =
    "int g; int a[64];\n\
     int work(int x) { int j; int t; t = x; for (j = 0; j < 8; j = j + 1) \
     { t = t + ((t << 1) ^ j) % 53; } return t; }\n\
     void main() { int i; for (i = 0; i < 100; i = i + 1) { a[i % 64] = \
     work(i); if (i % 33 == 32) { g = g + 1; } } print(g); }"
  in
  let at t =
    let c = compile_with_memsync ~threshold:t src [||] in
    List.fold_left
      (fun acc (_, s) -> acc + s.Tlscore.Memsync.ms_groups)
      0 c.Tlscore.Pipeline.mem_stats
  in
  check_int "ignored at 5%" 0 (at 0.05);
  check_bool "synchronized at 1%" true (at 0.01 >= 1)

let memsync_clones_along_path () =
  let src =
    "int g;\n\
     void bump() { g = g + 1; }\n\
     int work(int x) { int j; int t; t = x; for (j = 0; j < 8; j = j + 1) \
     { t = t + ((t << 1) ^ j) % 53; } return t; }\n\
     int a[64];\n\
     void main() { int i; for (i = 0; i < 20; i = i + 1) { a[i % 64] = \
     work(i); bump(); } print(g); }"
  in
  let c = compile_with_memsync src [||] in
  let stats = snd (List.hd c.Tlscore.Pipeline.mem_stats) in
  check_bool "cloned bump" true (stats.Tlscore.Memsync.ms_clones >= 1);
  check_bool "clone registered" true
    (List.exists
       (fun (name, _) ->
         String.length name > 5 && String.sub name 0 4 = "bump" && name <> "bump")
       c.Tlscore.Pipeline.prog.Ir.Prog.funcs);
  check_semantics_preserved "memsync cloning" src [||] c.Tlscore.Pipeline.prog

let memsync_null_elision () =
  (* Unconditional store on every path: latch nulls elided. *)
  let c = compile_with_memsync memsync_src [||] in
  let stats = snd (List.hd c.Tlscore.Pipeline.mem_stats) in
  check_bool "nulls elided or guarded" true
    (stats.Tlscore.Memsync.ms_null_signals = 0)

let memsync_region_groups_registered () =
  let c = compile_with_memsync memsync_src [||] in
  match c.Tlscore.Pipeline.prog.Ir.Prog.regions with
  | [ r ] ->
    check_int "one group" 1 (List.length r.Ir.Region.mem_groups);
    let mg = List.hd r.Ir.Region.mem_groups in
    check_int "one load" 1 (List.length mg.Ir.Region.mg_loads);
    check_int "one store" 1 (List.length mg.Ir.Region.mg_stores)
  | rs -> Alcotest.fail (Printf.sprintf "expected 1 region, got %d" (List.length rs))

let pipeline_optimize_flag () =
  (* The optimizer runs before profiling/transformation and must preserve
     both semantics and the synchronization machinery. *)
  let c =
    Tlscore.Pipeline.compile ~optimize:true ~source:memsync_src
      ~profile_input:[||]
      ~memory_sync:(Tlscore.Pipeline.Profiled { dep_input = [||]; threshold = 0.05 })
      ()
  in
  check_bool "still synchronized" true
    (List.exists
       (fun (_, (s : Tlscore.Memsync.stats)) -> s.Tlscore.Memsync.ms_sync_loads > 0)
       c.Tlscore.Pipeline.mem_stats);
  check_semantics_preserved "optimized pipeline" memsync_src [||]
    c.Tlscore.Pipeline.prog;
  (* And the optimizer run on an already-transformed program must not
     break its sync instructions either. *)
  let simplified = Ir.Opt.run c.Tlscore.Pipeline.prog in
  Ir.Verify.check_exn c.Tlscore.Pipeline.prog;
  check_bool "optimizer ran" true (simplified >= 0);
  check_semantics_preserved "post-transform optimize" memsync_src [||]
    c.Tlscore.Pipeline.prog

let pipeline_u_has_no_memsync () =
  let u =
    Tlscore.Pipeline.compile ~source:memsync_src ~profile_input:[||]
      ~memory_sync:Tlscore.Pipeline.No_memory_sync ()
  in
  check_bool "no mem stats" true (u.Tlscore.Pipeline.mem_stats = []);
  let f = Ir.Prog.func u.Tlscore.Pipeline.prog "main" in
  check_int "no wait_mem" 0
    (count_kind f (function Ir.Instr.Wait_mem _ -> true | _ -> false));
  check_bool "scalar waits present" true
    (count_kind f (function Ir.Instr.Wait_scalar _ -> true | _ -> false) >= 1)

(* ------------------------------------------------------------------ *)
(* Sync scheduling in the pipeline                                     *)
(* ------------------------------------------------------------------ *)

(* Instruction kinds in program order, per function. *)
let flat_kinds (c : Tlscore.Pipeline.compiled) =
  List.concat_map
    (fun (name, (f : Ir.Func.t)) ->
      let acc = ref [] in
      Ir.Func.iter_instrs f (fun l i -> acc := (name, l, i.Ir.Instr.kind) :: !acc);
      List.rev !acc)
    (List.sort compare c.Tlscore.Pipeline.prog.Ir.Prog.funcs)

let sync_sched_off_is_identity () =
  (* With the flag off (the default), the artifact is exactly the
     unscheduled one and no motion is reported. *)
  let plain = compile_with_memsync memsync_src [||] in
  let off =
    Tlscore.Pipeline.compile ~sync_sched:false ~source:memsync_src
      ~profile_input:[||]
      ~memory_sync:
        (Tlscore.Pipeline.Profiled { dep_input = [||]; threshold = 0.05 })
      ()
  in
  check_bool "identical instruction streams" true
    (flat_kinds plain = flat_kinds off);
  check_int "no motion reported" 0
    (Analysis.Syncsched.total off.Tlscore.Pipeline.sched_stats)

let sync_sched_on_preserves_kinds_and_semantics () =
  (* Scheduling only reorders within this program (no post-call signal
     to inline): same instruction-kind multiset, same sequential
     semantics. *)
  let naive = compile_with_memsync memsync_src [||] in
  let sched =
    Tlscore.Pipeline.compile ~sync_sched:true ~source:memsync_src
      ~profile_input:[||]
      ~memory_sync:
        (Tlscore.Pipeline.Profiled { dep_input = [||]; threshold = 0.05 })
      ()
  in
  (* Ignore block labels: a unit may sink or hoist across blocks. *)
  let multiset c =
    List.sort compare (List.map (fun (n, _, k) -> (n, k)) (flat_kinds c))
  in
  check_bool "same kind multiset" true (multiset naive = multiset sched);
  check_semantics_preserved "sync-sched" memsync_src [||]
    sched.Tlscore.Pipeline.prog

let () =
  Alcotest.run "tlscore"
    [
      ( "selection",
        [
          Alcotest.test_case "filters" `Quick selection_filters;
          Alcotest.test_case "prefers outer" `Quick selection_prefers_outer;
          Alcotest.test_case "rejects serialized" `Quick selection_rejects_serialized;
          Alcotest.test_case "rejects mostly-nested" `Quick selection_rejects_mostly_nested;
        ] );
      ( "scalar sync",
        [
          Alcotest.test_case "hoisted induction" `Quick scalar_hoisted_induction;
          Alcotest.test_case "eager placement" `Quick scalar_eager_placement;
          Alcotest.test_case "at-latch placement" `Quick scalar_at_latch_placement;
          Alcotest.test_case "distinct channels" `Quick scalar_channels_distinct;
        ] );
      ( "unroll",
        [
          Alcotest.test_case "preserves semantics" `Quick unroll_preserves_semantics;
          Alcotest.test_case "amortizes epochs" `Quick unroll_amortizes_epochs;
          Alcotest.test_case "early exit" `Quick unroll_keeps_early_exit;
          Alcotest.test_case "factor suggestion" `Quick unroll_factor_suggestion;
          Alcotest.test_case "pipeline integration" `Quick unroll_in_pipeline_absorbs_deps;
        ] );
      ( "grouping",
        [
          Alcotest.test_case "components" `Quick grouping_components;
          Alcotest.test_case "context distinguishes" `Quick grouping_context_distinguishes;
          Alcotest.test_case "empty" `Quick grouping_empty;
        ] );
      ( "cloning",
        [
          Alcotest.test_case "redirects path" `Quick cloning_redirects_path;
          Alcotest.test_case "shares prefixes" `Quick cloning_shares_prefixes;
          Alcotest.test_case "empty ctx identity" `Quick cloning_empty_ctx_identity;
        ] );
      ( "memsync",
        [
          Alcotest.test_case "inserts sync" `Quick memsync_inserts_sync;
          Alcotest.test_case "threshold" `Quick memsync_threshold_excludes;
          Alcotest.test_case "clones along path" `Quick memsync_clones_along_path;
          Alcotest.test_case "null elision" `Quick memsync_null_elision;
          Alcotest.test_case "groups registered" `Quick memsync_region_groups_registered;
          Alcotest.test_case "U has no memsync" `Quick pipeline_u_has_no_memsync;
          Alcotest.test_case "optimize flag" `Quick pipeline_optimize_flag;
        ] );
      ( "sync sched",
        [
          Alcotest.test_case "off is identity" `Quick sync_sched_off_is_identity;
          Alcotest.test_case "on preserves kinds and semantics" `Quick
            sync_sched_on_preserves_kinds_and_semantics;
        ] );
    ]
