(* Per-job timeouts in the Harness.Jobs pool (DESIGN §12 satellite):
   a wedged job must surface as Job_timeout naming its input index —
   within roughly the bound, never a hang — while every other job still
   completes and results keep input order.  The optional retry gets one
   second attempt at double the bound. *)

let check_int = Alcotest.(check int)

(* A job that spins [s] seconds of wall time (not sleep: a sleeping
   domain would also be descheduled by the monitor, but spinning is the
   honest model of a wedged simulation). *)
let spin s x =
  let until = Unix.gettimeofday () +. s in
  while Unix.gettimeofday () < until do
    ignore (Sys.opaque_identity (x * x))
  done;
  x

let timeout_fires () =
  (* Job 2 of five spins far past the 50ms bound; the rest are instant.
     The pool must raise Job_timeout for index 2 (the lowest-index
     error), after the other four completed. *)
  let pool = Harness.Jobs.create ~timeout:0.05 ~jobs:2 () in
  let completed = Atomic.make 0 in
  let job x =
    if x = 2 then ignore (spin 2.0 x)
    else begin
      Atomic.incr completed;
      ignore (Sys.opaque_identity x)
    end;
    x * 10
  in
  let t0 = Unix.gettimeofday () in
  (match pool.Harness.Jobs.map job [ 0; 1; 2; 3; 4 ] with
  | _ -> Alcotest.fail "expected Job_timeout"
  | exception Harness.Jobs.Job_timeout { index; timeout_s } ->
    check_int "timed-out job is named by input index" 2 index;
    Alcotest.(check (float 1e-9)) "carries the configured bound" 0.05 timeout_s);
  let elapsed = Unix.gettimeofday () -. t0 in
  (* Surfacing must be bounded: well before the 2s spin finishes.  (The
     abandoned domain keeps spinning in the background; we only assert
     when the *caller* got its answer.) *)
  Alcotest.(check bool)
    (Printf.sprintf "surfaced in %.3fs, within 2x-ish of the bound" elapsed)
    true (elapsed < 1.5);
  check_int "all other jobs completed" 4 (Atomic.get completed)

let retry_succeeds () =
  (* First attempt exceeds the 100ms bound, the retry (double budget)
     finishes: the map must succeed, in order, with two attempts made. *)
  let attempts = Atomic.make 0 in
  let job x =
    if x = 1 then begin
      let n = Atomic.fetch_and_add attempts 1 in
      if n = 0 then ignore (spin 0.5 x) else ignore (spin 0.01 x)
    end;
    x + 100
  in
  let pool = Harness.Jobs.create ~timeout:0.1 ~retry:true ~jobs:2 () in
  Alcotest.(check (list int))
    "retry rescues the slow job, order preserved" [ 100; 101; 102 ]
    (pool.Harness.Jobs.map job [ 0; 1; 2 ]);
  check_int "exactly two attempts at the slow job" 2 (Atomic.get attempts)

let retry_exhausted () =
  (* Both the attempt and its doubled-budget retry spin past the bound:
     Job_timeout, and exactly two attempts were made. *)
  let attempts = Atomic.make 0 in
  let job x =
    if x = 0 then begin
      Atomic.incr attempts;
      ignore (spin 2.0 x)
    end;
    x
  in
  let pool = Harness.Jobs.create ~timeout:0.05 ~retry:true ~jobs:1 () in
  (match pool.Harness.Jobs.map job [ 0; 1 ] with
  | _ -> Alcotest.fail "expected Job_timeout"
  | exception Harness.Jobs.Job_timeout { index; _ } ->
    check_int "names the wedged index" 0 index);
  (* The second attempt may still be starting when the error surfaces;
     give the monitor domain a beat before counting. *)
  Unix.sleepf 0.05;
  check_int "one attempt + one retry" 2 (Atomic.get attempts)

let attempt_plan_schedule () =
  (* The schedule is a pure function: attempt k runs under timeout*2^k
     after a backoff*2^(k-1) sleep (none before the first attempt). *)
  let plan =
    Harness.Jobs.attempt_plan ~timeout_s:0.1 ~backoff_s:0.25 ~retries:3
  in
  check_int "retries=3 means four attempts" 4 (List.length plan);
  List.iteri
    (fun k { Harness.Jobs.at_timeout_s; at_backoff_s } ->
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "attempt %d timeout" k)
        (0.1 *. (2.0 ** float_of_int k))
        at_timeout_s;
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "attempt %d backoff" k)
        (if k = 0 then 0.0 else 0.25 *. (2.0 ** float_of_int (k - 1)))
        at_backoff_s)
    plan;
  (* Determinism: the same inputs always yield the identical schedule. *)
  Alcotest.(check bool)
    "schedule is reproducible" true
    (plan = Harness.Jobs.attempt_plan ~timeout_s:0.1 ~backoff_s:0.25 ~retries:3)

let retries_exhausted_carries_history () =
  (* Every attempt spins past its (growing) deadline: the pool must give
     up with Retries_exhausted naming the index and the full schedule it
     granted — not the legacy Job_timeout. *)
  let attempts_made = Atomic.make 0 in
  let job x =
    if x = 1 then begin
      Atomic.incr attempts_made;
      ignore (spin 2.0 x)
    end;
    x
  in
  let pool =
    Harness.Jobs.create ~timeout:0.04 ~retries:2 ~retry:true ~jobs:1 ()
  in
  (match pool.Harness.Jobs.map job [ 0; 1; 2 ] with
  | _ -> Alcotest.fail "expected Retries_exhausted"
  | exception Harness.Jobs.Retries_exhausted { index; attempts } ->
    check_int "names the wedged index" 1 index;
    check_int "history covers retries+1 attempts" 3 (List.length attempts);
    Alcotest.(check bool)
      "history matches the published plan" true
      (attempts = Harness.Jobs.attempt_plan ~timeout_s:0.04 ~backoff_s:0.0
                    ~retries:2));
  Unix.sleepf 0.05;
  check_int "all three attempts were actually run" 3
    (Atomic.get attempts_made)

let retries_rescues_flaky_job () =
  (* Attempt 0 wedges, attempt 1 (double deadline) is instant: retries
     must rescue the job and the map succeed in order. *)
  let attempts = Atomic.make 0 in
  let job x =
    if x = 0 then begin
      let n = Atomic.fetch_and_add attempts 1 in
      if n = 0 then ignore (spin 0.5 x)
    end;
    x * 2
  in
  let pool = Harness.Jobs.create ~timeout:0.1 ~retries:2 ~jobs:2 () in
  Alcotest.(check (list int))
    "second attempt lands, order preserved" [ 0; 2; 4 ]
    (pool.Harness.Jobs.map job [ 0; 1; 2 ]);
  check_int "stopped after the first success" 2 (Atomic.get attempts)

let no_timeout_unchanged () =
  (* Without ?timeout the pool is the plain deterministic mapper. *)
  let pool = Harness.Jobs.create ~jobs:3 () in
  Alcotest.(check (list int))
    "plain parallel map" [ 0; 1; 4; 9; 16 ]
    (pool.Harness.Jobs.map (fun x -> x * x) [ 0; 1; 2; 3; 4 ])

(* Worker-death contract: a domain dying mid-queue must not orphan the
   items it would have claimed — the pool self-check re-runs them inline
   and the map still returns every result, in input order. *)
let dead_worker_orphans_nothing () =
  let killed = Atomic.make false in
  let worker_fault i =
    (* Kill exactly one worker, whichever claims item 3. *)
    if i = 3 && not (Atomic.exchange killed true) then
      failwith "injected worker death"
  in
  let items = List.init 32 Fun.id in
  let pool = Harness.Jobs.create ~worker_fault ~jobs:4 () in
  Alcotest.(check (list int))
    "all results slotted despite a dead worker"
    (List.map (fun x -> x * x) items)
    (pool.Harness.Jobs.map (fun x -> x * x) items);
  Alcotest.(check bool) "the fault actually fired" true (Atomic.get killed)

(* A job error must still re-raise as itself (lowest index first), not
   be masked by a sibling domain's death. *)
let dead_worker_does_not_mask_job_error () =
  let killed = Atomic.make false in
  let worker_fault i =
    if i = 1 && not (Atomic.exchange killed true) then
      failwith "injected worker death"
  in
  let pool = Harness.Jobs.create ~worker_fault ~jobs:4 () in
  match
    pool.Harness.Jobs.map
      (fun x -> if x = 5 then raise Exit else x)
      (List.init 16 Fun.id)
  with
  | _ -> Alcotest.fail "expected the job's own exception"
  | exception Exit -> Alcotest.(check bool) "fault fired" true (Atomic.get killed)
  | exception e ->
    Alcotest.fail ("job error was masked by: " ^ Printexc.to_string e)

(* Every worker dying still drains the whole queue via the recovery
   pass in the calling domain. *)
let all_workers_die_queue_drains () =
  let worker_fault _ = failwith "injected worker death" in
  let items = List.init 12 Fun.id in
  let pool = Harness.Jobs.create ~worker_fault ~jobs:4 () in
  Alcotest.(check (list int))
    "recovery pass completes the map"
    (List.map succ items)
    (pool.Harness.Jobs.map succ items)

let () =
  Alcotest.run "jobs"
    [
      ( "timeout",
        [
          Alcotest.test_case "fires with the input index" `Quick timeout_fires;
          Alcotest.test_case "retry at double budget succeeds" `Quick
            retry_succeeds;
          Alcotest.test_case "retry exhausted still times out" `Quick
            retry_exhausted;
          Alcotest.test_case "no timeout: plain map" `Quick no_timeout_unchanged;
        ] );
      ( "retries",
        [
          Alcotest.test_case "attempt plan is deterministic exponential"
            `Quick attempt_plan_schedule;
          Alcotest.test_case "exhaustion carries attempt history" `Quick
            retries_exhausted_carries_history;
          Alcotest.test_case "retries rescue a flaky job" `Quick
            retries_rescues_flaky_job;
        ] );
      ( "pool-self-check",
        [
          Alcotest.test_case "dead worker orphans nothing" `Quick
            dead_worker_orphans_nothing;
          Alcotest.test_case "dead worker does not mask a job error" `Quick
            dead_worker_does_not_mask_job_error;
          Alcotest.test_case "all workers dead: queue still drains" `Quick
            all_workers_die_queue_drains;
        ] );
    ]
