// CLI smoke-test fixture: a serial chain through the global g gives the
// selected loop one static-address memory channel, so dropping its
// signal deadlocks and dropping its wait trips the protocol check.
int g;
int out[64];
int work(int x) {
  int j; int t;
  t = x;
  for (j = 0; j < 10 + x % 7; j = j + 1) { t = t + ((t << 1) ^ j) % 53; }
  return t;
}
void main() {
  int i; int v;
  for (i = 0; i < 40; i = i + 1) {
    v = g;
    out[i % 64] = work(v + i);
    g = v + 1;
  }
  print(g);
  print(out[5]);
}
