(* Fault injection, watchdog, and differential chaos.

   Three layers under test: profile faults absorbed by the architecture,
   IR faults that synclint predicts statically and the simulator must
   either absorb or detect dynamically, and simulator faults against the
   forwarding path.  The chaos harness ties them together: for every
   (program, mode, fault) cell, absorbable faults must keep sequential
   equivalence and detectable ones must end in a typed error, never a
   hang. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* Serial chain through global [g]: one static-address memory channel,
   long producer latency (every epoch blocks its consumer's wait). *)
let chain_src =
  "int g;\n\
   int out[64];\n\
   int work(int x) { int j; int t; t = x; for (j = 0; j < 10 + x % 7; j = \
   j + 1) { t = t + ((t << 1) ^ j) % 53; } return t; }\n\
   void main() {\n\
  \  int i; int v;\n\
  \  for (i = 0; i < 40; i = i + 1) {\n\
  \    v = g;\n\
  \    out[i % 64] = work(v + i);\n\
  \    g = v + 1;\n\
  \  }\n\
  \  print(g);\n\
  \  print(out[5]);\n\
   }"

(* Pointer-varying group: forwarded addresses sometimes miss. *)
let aliasing_src =
  "int slots[32];\n\
   int sel[64];\n\
   int work(int x) { int j; int t; t = x; for (j = 0; j < 12; j = j + 1) { \
   t = t + ((t << 1) ^ j) % 53; } return t; }\n\
   void main() {\n\
  \  int i; int k; int v;\n\
  \  for (i = 0; i < 48; i = i + 1) {\n\
  \    k = sel[i % 64] % 4;\n\
  \    v = slots[k * 8];\n\
  \    v = v + work(i);\n\
  \    slots[k * 8] = v;\n\
  \  }\n\
  \  print(slots[0] + slots[8] + slots[16] + slots[24]);\n\
   }"

let train_input = Array.init 64 (fun i -> i * 7)
let ref_input = Array.init 64 (fun i -> (i * 5) + 3)

let seq_output src input =
  let prog = Ir.Lower.compile_source src in
  let code = Runtime.Code.of_prog prog in
  let mem = Runtime.Memory.create () in
  Runtime.Thread.run_sequential code ~input mem

let compile_synced ?profile_fault src input =
  Tlscore.Pipeline.compile ?profile_fault ~lint:false ~source:src
    ~profile_input:input
    ~memory_sync:
      (Tlscore.Pipeline.Profiled { dep_input = input; threshold = 0.05 })
    ()

let mutate_exn kind prog =
  match Faults.Irfault.apply kind prog with
  | Some a -> a
  | None ->
    Alcotest.fail ("fault not applicable: " ^ Faults.Irfault.kind_name kind)

let run_tls cfg code input = Tls.Sim.run cfg code ~input ()

(* ------------------------------------------------------------------ *)
(* Program generator                                                   *)
(* ------------------------------------------------------------------ *)

let proggen_deterministic () =
  let s1, i1 = Faults.Proggen.generate ~seed:5 in
  let s2, i2 = Faults.Proggen.generate ~seed:5 in
  Alcotest.(check string) "same source" s1 s2;
  Alcotest.(check (array int)) "same input" i1 i2;
  let s3, _ = Faults.Proggen.generate ~seed:6 in
  check_bool "different seeds differ" true (not (String.equal s1 s3))

let proggen_runs_sequentially () =
  (* Every generated program must terminate and print. *)
  for seed = 0 to 9 do
    let src, input = Faults.Proggen.generate ~seed in
    let out = seq_output src input in
    check_int (Printf.sprintf "seed %d prints 5 values" seed) 5
      (List.length out)
  done

(* ------------------------------------------------------------------ *)
(* Profile faults                                                      *)
(* ------------------------------------------------------------------ *)

let arcs dp =
  Hashtbl.fold (fun d c acc -> (d, c) :: acc) dp.Profiler.Profile.dep_epochs []
  |> List.sort compare

let proffault_pure_and_deterministic () =
  let compiled = compile_synced chain_src [||] in
  match compiled.Tlscore.Pipeline.dep_profiles with
  | [] -> Alcotest.fail "chain program produced no dependence profile"
  | (_, dp) :: _ ->
    let before = arcs dp in
    check_bool "profile has arcs" true (before <> []);
    List.iter
      (fun f ->
        let a = Faults.Proffault.apply f dp in
        let b = Faults.Proffault.apply f dp in
        Alcotest.(check bool)
          (Faults.Proffault.name f ^ " deterministic")
          true
          (arcs a = arcs b);
        Alcotest.(check bool)
          (Faults.Proffault.name f ^ " leaves original intact")
          true (arcs dp = before))
      [
        Faults.Proffault.Drop_arcs { seed = 11 };
        Faults.Proffault.Duplicate_arcs { seed = 12 };
        Faults.Proffault.Shuffle_arcs { seed = 13 };
      ]

let profile_faults_absorbed () =
  let expected = seq_output chain_src [||] in
  List.iter
    (fun f ->
      let compiled =
        compile_synced ~profile_fault:(Faults.Proffault.apply f) chain_src [||]
      in
      let r = run_tls Tls.Config.c_mode compiled.Tlscore.Pipeline.code [||] in
      Alcotest.(check (list int))
        (Faults.Proffault.name f ^ " output")
        expected r.Tls.Simstats.output)
    [
      Faults.Proffault.Drop_arcs { seed = 11 };
      Faults.Proffault.Duplicate_arcs { seed = 12 };
      Faults.Proffault.Shuffle_arcs { seed = 13 };
    ]

let stale_training_absorbed () =
  (* Profile on train, run on ref: sync placement is stale but execution
     must stay sequentially equivalent. *)
  let compiled = compile_synced aliasing_src train_input in
  let expected = seq_output aliasing_src ref_input in
  let r =
    run_tls Tls.Config.c_mode compiled.Tlscore.Pipeline.code ref_input
  in
  Alcotest.(check (list int)) "stale-train output" expected
    r.Tls.Simstats.output

(* ------------------------------------------------------------------ *)
(* Detectable faults: typed errors, never hangs                        *)
(* ------------------------------------------------------------------ *)

(* Satellite: the receive-side Deadlock path.  Dropping every signal of
   the chain's memory channel leaves each consumer waiting on a channel
   its committed predecessor never signaled. *)
let dropped_signal_deadlocks () =
  let compiled = compile_synced chain_src [||] in
  let applied = mutate_exn Faults.Irfault.Drop_signal compiled.Tlscore.Pipeline.prog in
  check_bool "mutated a memory channel" false applied.Faults.Irfault.scalar;
  let code = Runtime.Code.of_prog applied.Faults.Irfault.prog in
  match run_tls Tls.Config.c_mode code [||] with
  | _ -> Alcotest.fail "expected Deadlock"
  | exception Tls.Sim.Deadlock msg ->
    check_bool "deadlock names a channel" true
      (String.length msg > 0)

let dropped_wait_trips_protocol_check () =
  let compiled = compile_synced chain_src [||] in
  let applied = mutate_exn Faults.Irfault.Drop_wait compiled.Tlscore.Pipeline.prog in
  let code = Runtime.Code.of_prog applied.Faults.Irfault.prog in
  match run_tls Tls.Config.c_mode code [||] with
  | _ -> Alcotest.fail "expected Stuck (Missing_wait)"
  | exception Tls.Sim.Stuck d -> begin
    match d.Tls.Sim.sd_reason with
    | Tls.Sim.Missing_wait { channel; _ } ->
      check_int "protocol check names the dropped channel"
        applied.Faults.Irfault.channel channel
    | Tls.Sim.No_progress _ ->
      Alcotest.fail "expected Missing_wait, got No_progress"
  end

let dropped_wakeup_trips_watchdog () =
  let compiled = compile_synced chain_src [||] in
  let cfg =
    {
      Tls.Config.c_mode with
      Tls.Config.sim_faults = [ Tls.Config.Drop_wakeup 0 ];
      watchdog_window = 4_000;
    }
  in
  match run_tls cfg compiled.Tlscore.Pipeline.code [||] with
  | _ -> Alcotest.fail "expected Stuck (No_progress)"
  | exception Tls.Sim.Stuck d -> begin
    match d.Tls.Sim.sd_reason with
    | Tls.Sim.No_progress { window } ->
      check_int "watchdog window" 4_000 window;
      check_bool "diagnostic lists in-flight epochs" true
        (d.Tls.Sim.sd_epochs <> []);
      check_bool "some epoch is blocked" true
        (List.exists
           (fun (e : Tls.Sim.epoch_diag) -> e.Tls.Sim.ed_blocked)
           d.Tls.Sim.sd_epochs);
      check_bool "describe is one line" true
        (let s = Tls.Sim.describe_stuck d in
         String.length s > 0 && not (String.contains s '\n'))
    | Tls.Sim.Missing_wait _ ->
      Alcotest.fail "expected No_progress, got Missing_wait"
  end

(* The watchdog fires iff the machine stalls for strictly more than
   [watchdog_window] cycles: the check is [cycle - last_progress >
   window], tested before each TLS cycle.  Bounded stalls (a delayed
   signal has a known wake time) are fast-forwarded past and thus
   invisible; only an unbounded stall — here a dropped wakeup — lets
   the stall counter grow.  Pin the boundary cycle-exactly: if the last
   progress before the wedge is at cycle P (a property of the program
   and fault, not of the window), the diagnostic must report sd_cycle =
   P + window + 1.  Running at window-1, window, and window+1 must
   yield firing cycles exactly one apart with the same recovered P —
   i.e. a stall of exactly [window] cycles never fires, and the
   (window+1)-th stalled cycle always does. *)
let watchdog_boundary_is_exact () =
  let compiled = compile_synced chain_src [||] in
  let fire_cycle window =
    let cfg =
      {
        Tls.Config.c_mode with
        Tls.Config.sim_faults = [ Tls.Config.Drop_wakeup 0 ];
        watchdog_window = window;
      }
    in
    match run_tls cfg compiled.Tlscore.Pipeline.code [||] with
    | _ -> Alcotest.fail "expected Stuck (No_progress)"
    | exception Tls.Sim.Stuck d -> begin
      match d.Tls.Sim.sd_reason with
      | Tls.Sim.No_progress { window = reported } ->
        check_int "diagnostic reports the configured window" window reported;
        d.Tls.Sim.sd_cycle
      | Tls.Sim.Missing_wait _ ->
        Alcotest.fail "expected No_progress, got Missing_wait"
    end
  in
  let w = 4_000 in
  let at_wm1 = fire_cycle (w - 1) in
  let at_w = fire_cycle w in
  let at_wp1 = fire_cycle (w + 1) in
  (* Strict boundary: widening the window by one cycle defers the trip
     by exactly one cycle. *)
  check_int "window defers firing by exactly one cycle" (at_w + 1) at_wp1;
  check_int "narrowing advances it by exactly one cycle" (at_w - 1) at_wm1;
  (* All three runs recover the same last-progress cycle P, so each
     fired at stall = window + 1 and none at stall <= window. *)
  let p = at_w - w - 1 in
  check_int "window-1 run: same last-progress cycle" p (at_wm1 - (w - 1) - 1);
  check_int "window+1 run: same last-progress cycle" p (at_wp1 - (w + 1) - 1);
  check_bool "progress happened before the wedge" true (p > 0)

let cycle_budget_is_typed () =
  let compiled = compile_synced chain_src [||] in
  match
    Tls.Sim.run ~max_cycles:100 Tls.Config.u_mode
      compiled.Tlscore.Pipeline.code ~input:[||] ()
  with
  | _ -> Alcotest.fail "expected Cycle_limit"
  | exception Tls.Sim.Cycle_limit { max_cycles; cycle; where } ->
    check_int "budget carried" 100 max_cycles;
    check_bool "cycle at/above budget" true (cycle >= 100);
    Alcotest.(check string) "raised by run" "Sim.run" where

(* ------------------------------------------------------------------ *)
(* Absorbable simulator faults: sequential equivalence must hold       *)
(* ------------------------------------------------------------------ *)

let absorbable_sim_faults () =
  let compiled = compile_synced chain_src [||] in
  let expected = seq_output chain_src [||] in
  List.iter
    (fun (label, fault) ->
      let cfg = { Tls.Config.c_mode with Tls.Config.sim_faults = [ fault ] } in
      let r = run_tls cfg compiled.Tlscore.Pipeline.code [||] in
      Alcotest.(check (list int)) (label ^ " output") expected
        r.Tls.Simstats.output;
      check_bool (label ^ " actually fired") true
        (r.Tls.Simstats.faults_fired >= 1))
    [
      ("corrupt-addr", Tls.Config.Corrupt_addr 0);
      ("corrupt-value", Tls.Config.Corrupt_value 0);
      ("delay-signal", Tls.Config.Delay_signal { nth = 0; extra = 1_500 });
      ("spurious-violation", Tls.Config.Spurious_violation 1);
    ]

let spurious_violation_squashes_once () =
  let compiled = compile_synced chain_src [||] in
  let base = run_tls Tls.Config.c_mode compiled.Tlscore.Pipeline.code [||] in
  let cfg =
    { Tls.Config.c_mode with
      Tls.Config.sim_faults = [ Tls.Config.Spurious_violation 1 ] }
  in
  let r = run_tls cfg compiled.Tlscore.Pipeline.code [||] in
  check_int "exactly one extra violation" (base.Tls.Simstats.violations + 1)
    r.Tls.Simstats.violations

(* ------------------------------------------------------------------ *)
(* Finite resources: graceful degradation (DESIGN §12)                 *)
(* ------------------------------------------------------------------ *)

let sig_buffer_drop_absorbed () =
  let compiled = compile_synced chain_src [||] in
  let expected = seq_output chain_src [||] in
  let cfg = { Tls.Config.c_mode with Tls.Config.sig_buffer_entries = 0 } in
  let r = run_tls cfg compiled.Tlscore.Pipeline.code [||] in
  Alcotest.(check (list int)) "output still sequential" expected
    r.Tls.Simstats.output;
  check_bool "signals were dropped" true
    (r.Tls.Simstats.resources.Tls.Simstats.rs_sig_drops >= 1)

let spec_overflow_stall_absorbed () =
  (* U mode: without compiler sync the epochs run far enough ahead to
     pile up speculative lines (under C the chain serializes on its
     forwarded channel before any epoch accumulates state). *)
  let compiled = compile_synced chain_src [||] in
  let expected = seq_output chain_src [||] in
  let cfg = { Tls.Config.u_mode with Tls.Config.spec_lines_per_epoch = 1 } in
  let r = run_tls cfg compiled.Tlscore.Pipeline.code [||] in
  let rs = r.Tls.Simstats.resources in
  Alcotest.(check (list int)) "output still sequential" expected
    r.Tls.Simstats.output;
  check_bool "overflowed" true (rs.Tls.Simstats.rs_spec_overflows >= 1);
  check_bool "stalled, per policy" true (rs.Tls.Simstats.rs_spec_stalls >= 1);
  check_int "never squashed under Overflow_stall" 0
    rs.Tls.Simstats.rs_spec_squashes

let spec_overflow_squash_absorbed () =
  let compiled = compile_synced chain_src [||] in
  let expected = seq_output chain_src [||] in
  let cfg =
    {
      Tls.Config.u_mode with
      Tls.Config.spec_lines_per_epoch = 1;
      overflow_policy = Tls.Config.Overflow_squash;
    }
  in
  let r = run_tls cfg compiled.Tlscore.Pipeline.code [||] in
  let rs = r.Tls.Simstats.resources in
  Alcotest.(check (list int)) "output still sequential" expected
    r.Tls.Simstats.output;
  check_bool "squashed, per policy" true (rs.Tls.Simstats.rs_spec_squashes >= 1);
  (* Every overflow squash is an epoch squash (violation squashes may
     add more on top, but never fewer). *)
  check_bool "squashes show up in the epoch stats" true
    (r.Tls.Simstats.epochs_squashed >= rs.Tls.Simstats.rs_spec_squashes)

let fwd_queue_deadlock_is_typed () =
  let compiled = compile_synced chain_src [||] in
  let cfg = { Tls.Config.c_mode with Tls.Config.fwd_queue_depth = 0 } in
  match run_tls cfg compiled.Tlscore.Pipeline.code [||] with
  | _ -> Alcotest.fail "expected Resource_deadlock"
  | exception Tls.Sim.Resource_deadlock d ->
    check_int "carries the configured depth" 0 d.Tls.Sim.rd_depth;
    Alcotest.(check string) "names the owning function" "main" d.Tls.Sim.rd_func;
    check_bool "cycle recorded" true (d.Tls.Sim.rd_cycle > 0);
    check_bool "epoch snapshots attached" true (d.Tls.Sim.rd_epochs <> []);
    check_bool "renders" true
      (String.length (Tls.Sim.describe_resource_deadlock d) > 0)

let unreached_limits_are_invisible () =
  (* Finite limits the run never reaches must be byte-identical to the
     unbounded defaults — the accounting is pure observation. *)
  let compiled = compile_synced chain_src [||] in
  let base = run_tls Tls.Config.c_mode compiled.Tlscore.Pipeline.code [||] in
  let cfg =
    {
      Tls.Config.c_mode with
      Tls.Config.sig_buffer_entries = 1_000;
      spec_lines_per_epoch = 1_000;
      fwd_queue_depth = 1_000;
    }
  in
  let r = run_tls cfg compiled.Tlscore.Pipeline.code [||] in
  Alcotest.(check string) "fingerprints agree"
    (Tls.Simstats.fingerprint base)
    (Tls.Simstats.fingerprint r);
  let rs = r.Tls.Simstats.resources in
  check_int "no drops" 0 rs.Tls.Simstats.rs_sig_drops;
  check_int "no overflows" 0 rs.Tls.Simstats.rs_spec_overflows;
  check_int "no backpressure" 0 rs.Tls.Simstats.rs_bp_signals;
  check_bool "peaks observed anyway" true
    (rs.Tls.Simstats.rs_peak_spec_lines > 0)

let capacity_sweep_clean () =
  let programs =
    {
      Faults.Chaos.p_name = "chain";
      p_source = chain_src;
      p_train = [||];
      p_ref = [||];
      p_select_main = false;
    }
    :: Faults.Chaos.fuzz_programs ~count:1 ~seed:11
  in
  let cells =
    Faults.Chaos.run_capacity
      ~modes:[ ("U", Tls.Config.u_mode); ("C", Tls.Config.c_mode) ]
      programs
  in
  check_int "cells = programs x modes x axes"
    (List.length programs * 2 * List.length Faults.Chaos.capacity_axes)
    (List.length cells);
  check_int "zero FAILED" 0 (Faults.Chaos.count_capacity_failed cells);
  check_bool "some axis absorbed" true
    (List.exists (fun c -> c.Faults.Chaos.cc_outcome = Faults.Chaos.Absorbed) cells);
  check_bool "forwarding axis detected" true
    (List.exists
       (fun c ->
         c.Faults.Chaos.cc_axis = Faults.Chaos.Cap_fwd_queue
         && match c.Faults.Chaos.cc_outcome with
            | Faults.Chaos.Detected _ -> true
            | _ -> false)
       cells);
  check_bool "renders with tally" true
    (String.length (Faults.Chaos.render_capacity_table cells) > 0)

(* ------------------------------------------------------------------ *)
(* Static <-> dynamic agreement                                        *)
(* ------------------------------------------------------------------ *)

(* synclint on the mutated IR must flag the fault with the expected
   detector, and the simulator must realize the predicted dynamic
   outcome. *)
let lint_mutant kind src input =
  let compiled = compile_synced src input in
  let applied = mutate_exn kind compiled.Tlscore.Pipeline.prog in
  let findings =
    Analysis.Synclint.run_prog
      ~dep_profiles:compiled.Tlscore.Pipeline.dep_profiles
      applied.Faults.Irfault.prog
  in
  (applied, findings)

let has_error findings detector =
  List.exists
    (fun (f : Analysis.Synclint.finding) ->
      String.equal f.Analysis.Synclint.f_detector detector
      && f.Analysis.Synclint.f_severity = Analysis.Synclint.Error)
    findings

let agreement_drop_signal () =
  let _, findings = lint_mutant Faults.Irfault.Drop_signal chain_src [||] in
  check_bool "signal-exactness error predicted" true
    (has_error findings "signal-exactness")
(* dynamic outcome asserted by dropped_signal_deadlocks *)

let agreement_drop_wait () =
  let _, findings = lint_mutant Faults.Irfault.Drop_wait chain_src [||] in
  check_bool "dominance error predicted" true (has_error findings "dominance")
(* dynamic outcome asserted by dropped_wait_trips_protocol_check *)

let agreement_dup_signal () =
  let applied, findings =
    lint_mutant Faults.Irfault.Duplicate_signal chain_src [||]
  in
  check_bool "double-signal error predicted" true
    (has_error findings "double-signal");
  (* Dynamic: the duplicate re-sends the same value; consumers that
     already used the first copy are violated and re-run — absorbed. *)
  let code = Runtime.Code.of_prog applied.Faults.Irfault.prog in
  let r = run_tls Tls.Config.c_mode code [||] in
  Alcotest.(check (list int)) "dup-signal absorbed" (seq_output chain_src [||])
    r.Tls.Simstats.output

let agreement_foreign_signal () =
  let applied, findings =
    lint_mutant Faults.Irfault.Foreign_signal chain_src [||]
  in
  check_bool "foreign-channel error predicted" true
    (has_error findings "foreign-channel");
  let code = Runtime.Code.of_prog applied.Faults.Irfault.prog in
  let r = run_tls Tls.Config.c_mode code [||] in
  Alcotest.(check (list int)) "foreign-signal absorbed"
    (seq_output chain_src [||])
    r.Tls.Simstats.output

(* ------------------------------------------------------------------ *)
(* Chaos matrix                                                        *)
(* ------------------------------------------------------------------ *)

let find_cell cells mode fault =
  List.find
    (fun (c : Faults.Chaos.cell) ->
      String.equal c.Faults.Chaos.c_mode mode
      && String.equal c.Faults.Chaos.c_fault fault)
    cells

let chaos_matrix_clean () =
  let program =
    {
      Faults.Chaos.p_name = "aliasing";
      p_source = aliasing_src;
      p_train = train_input;
      p_ref = ref_input;
      p_select_main = false;
    }
  in
  let cells =
    Faults.Chaos.run_program ~modes:Faults.Chaos.default_modes
      ~faults:Faults.Fault.catalog program
  in
  check_int "no FAILED cells" 0 (Faults.Chaos.count_failed cells);
  (match (find_cell cells "C" "none").Faults.Chaos.c_outcome with
  | Faults.Chaos.Passed -> ()
  | _ -> Alcotest.fail "baseline under C should pass");
  (match (find_cell cells "C" "drop-signal").Faults.Chaos.c_outcome with
  | Faults.Chaos.Detected _ -> ()
  | _ -> Alcotest.fail "drop-signal under C should be detected");
  (match (find_cell cells "U" "drop-arcs").Faults.Chaos.c_outcome with
  | Faults.Chaos.Skipped -> ()
  | _ -> Alcotest.fail "profile fault under U should be skipped");
  let table = Faults.Chaos.render_table cells in
  check_bool "table reports zero FAILED" true
    (let needle = "0 FAILED" in
     let n = String.length table and m = String.length needle in
     let rec scan i = i + m <= n && (String.sub table i m = needle || scan (i + 1)) in
     scan 0)

(* Sync scheduling over the generated corpus: for every program,
   scheduling must preserve sequential equivalence (both under the
   sequential interpreter and end-to-end through the simulator), stay
   lint-clean, and never increase the statically predicted stall. *)
let sched_params =
  {
    Analysis.Staticcost.issue_width = 4;
    lat_mul = 3;
    lat_div = 12;
    forward_latency = 10;
    spawn_overhead = 10;
    track_line_words = Some 8;
  }

let predicted_stall prog input =
  let profile = Profiler.Runner.run prog ~input ~watch:[] in
  List.fold_left
    (fun acc (rc : Analysis.Staticcost.region_cost) ->
      List.fold_left
        (fun a (cc : Analysis.Staticcost.channel_cost) ->
          a +. cc.Analysis.Staticcost.cc_total)
        acc rc.Analysis.Staticcost.rc_channels)
    0.
    (Analysis.Staticcost.analyze sched_params profile prog)

let seq_output_prog prog input =
  let code = Runtime.Code.of_prog prog in
  let mem = Runtime.Memory.create () in
  Runtime.Thread.run_sequential code ~input mem

let sched_fuzz =
  QCheck.Test.make ~count:30 ~name:"sync scheduling differential"
    (QCheck.make
       ~print:(fun seed -> fst (Faults.Proggen.generate ~seed))
       (QCheck.Gen.int_bound 1_000_000))
    (fun seed ->
      let src, input = Faults.Proggen.generate ~seed in
      let selection =
        List.filter
          (fun k -> String.equal k.Profiler.Profile.lk_func "main")
          (Profiler.Runner.all_loops (Tlscore.Pipeline.original ~source:src))
      in
      let comp sync_sched =
        Tlscore.Pipeline.compile ~selection ~sync_sched ~source:src
          ~profile_input:input
          ~memory_sync:
            (Tlscore.Pipeline.Profiled { dep_input = input; threshold = 0.05 })
          ()
      in
      let naive = comp false and sched = comp true in
      let reference =
        seq_output_prog (Tlscore.Pipeline.original ~source:src) input
      in
      let r =
        run_tls Tls.Config.c_mode sched.Tlscore.Pipeline.code input
      in
      seq_output_prog sched.Tlscore.Pipeline.prog input = reference
      && r.Tls.Simstats.output = reference
      && sched.Tlscore.Pipeline.lint_findings = []
      && predicted_stall sched.Tlscore.Pipeline.prog input
         <= predicted_stall naive.Tlscore.Pipeline.prog input +. 1e-6)

(* The differential fuzzer: each generated program must survive its full
   fault x mode matrix with zero FAILED cells. *)
let chaos_fuzz =
  QCheck.Test.make ~count:50 ~name:"chaos differential fuzzing"
    (QCheck.make
       ~print:(fun seed -> fst (Faults.Proggen.generate ~seed))
       (QCheck.Gen.int_bound 1_000_000))
    (fun seed ->
      let program = List.hd (Faults.Chaos.fuzz_programs ~count:1 ~seed) in
      let cells =
        Faults.Chaos.run_program ~modes:Faults.Chaos.default_modes
          ~faults:Faults.Fault.catalog program
      in
      Faults.Chaos.count_failed cells = 0)

let () =
  Alcotest.run "faults"
    [
      ( "proggen",
        [
          Alcotest.test_case "deterministic" `Quick proggen_deterministic;
          Alcotest.test_case "runs sequentially" `Quick proggen_runs_sequentially;
        ] );
      ( "profile-faults",
        [
          Alcotest.test_case "pure and deterministic" `Quick
            proffault_pure_and_deterministic;
          Alcotest.test_case "absorbed" `Quick profile_faults_absorbed;
          Alcotest.test_case "stale training absorbed" `Quick
            stale_training_absorbed;
        ] );
      ( "detectable",
        [
          Alcotest.test_case "dropped signal deadlocks" `Quick
            dropped_signal_deadlocks;
          Alcotest.test_case "dropped wait trips protocol check" `Quick
            dropped_wait_trips_protocol_check;
          Alcotest.test_case "dropped wakeup trips watchdog" `Quick
            dropped_wakeup_trips_watchdog;
          Alcotest.test_case "watchdog boundary is exact" `Quick
            watchdog_boundary_is_exact;
          Alcotest.test_case "cycle budget is typed" `Quick cycle_budget_is_typed;
        ] );
      ( "absorbable",
        [
          Alcotest.test_case "sim faults absorbed" `Quick absorbable_sim_faults;
          Alcotest.test_case "spurious violation squashes once" `Quick
            spurious_violation_squashes_once;
        ] );
      ( "resources",
        [
          Alcotest.test_case "signal-buffer drops absorbed" `Quick
            sig_buffer_drop_absorbed;
          Alcotest.test_case "spec-line overflow stalls absorbed" `Quick
            spec_overflow_stall_absorbed;
          Alcotest.test_case "spec-line overflow squashes absorbed" `Quick
            spec_overflow_squash_absorbed;
          Alcotest.test_case "forwarding-queue deadlock is typed" `Quick
            fwd_queue_deadlock_is_typed;
          Alcotest.test_case "unreached limits are invisible" `Quick
            unreached_limits_are_invisible;
          Alcotest.test_case "capacity sweep clean" `Quick capacity_sweep_clean;
        ] );
      ( "agreement",
        [
          Alcotest.test_case "drop-signal" `Quick agreement_drop_signal;
          Alcotest.test_case "drop-wait" `Quick agreement_drop_wait;
          Alcotest.test_case "dup-signal" `Quick agreement_dup_signal;
          Alcotest.test_case "foreign-signal" `Quick agreement_foreign_signal;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "matrix clean" `Quick chaos_matrix_clean;
          QCheck_alcotest.to_alcotest chaos_fuzz;
        ] );
      ( "sync sched",
        [ QCheck_alcotest.to_alcotest sched_fuzz ] );
    ]
