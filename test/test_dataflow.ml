(* Dataflow tests: dominance, natural loops, liveness, the generic solver.
   CFGs are built directly through the Func API so shapes are exact. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* Build a function from a shape: for each block, (instrs, terminator). *)
let build_func shapes =
  let f = Ir.Func.create "t" [] in
  List.iter (fun _ -> ignore (Ir.Func.add_block f)) shapes;
  List.iteri
    (fun l (instrs, term) ->
      let b = Ir.Func.block f l in
      b.Ir.Func.instrs <- instrs;
      b.Ir.Func.term <- term)
    shapes;
  f

let mk_instr =
  let next = ref 1000 in
  fun kind ->
    incr next;
    { Ir.Instr.iid = !next; kind }

(* A diamond: 0 -> 1,2 -> 3. *)
let diamond () =
  build_func
    [
      ([], Ir.Instr.Br (Ir.Instr.Imm 1, 1, 2));
      ([], Ir.Instr.Jmp 3);
      ([], Ir.Instr.Jmp 3);
      ([], Ir.Instr.Ret None);
    ]

(* A loop: 0 -> 1(header) -> 2(body) -> 1, 1 -> 3(exit). *)
let simple_loop () =
  build_func
    [
      ([], Ir.Instr.Jmp 1);
      ([], Ir.Instr.Br (Ir.Instr.Imm 1, 2, 3));
      ([], Ir.Instr.Jmp 1);
      ([], Ir.Instr.Ret None);
    ]

(* Nested: 0 -> 1(outer hdr) -> 2(inner hdr) -> 3(inner body) -> 2,
   2 -> 4(outer latch) -> 1, 1 -> 5 exit. *)
let nested_loops () =
  build_func
    [
      ([], Ir.Instr.Jmp 1);
      ([], Ir.Instr.Br (Ir.Instr.Imm 1, 2, 5));
      ([], Ir.Instr.Br (Ir.Instr.Imm 1, 3, 4));
      ([], Ir.Instr.Jmp 2);
      ([], Ir.Instr.Jmp 1);
      ([], Ir.Instr.Ret None);
    ]

(* ------------------------------------------------------------------ *)
(* Dominance                                                           *)
(* ------------------------------------------------------------------ *)

let dom_diamond () =
  let f = diamond () in
  let d = Dataflow.Dominance.compute f in
  check_bool "0 dom 3" true (Dataflow.Dominance.dominates d 0 3);
  check_bool "1 !dom 3" false (Dataflow.Dominance.dominates d 1 3);
  check_bool "self" true (Dataflow.Dominance.dominates d 2 2);
  Alcotest.(check (option int)) "idom 3" (Some 0) (Dataflow.Dominance.idom d 3);
  Alcotest.(check (option int)) "idom 0" None (Dataflow.Dominance.idom d 0)

let dom_loop () =
  let f = simple_loop () in
  let d = Dataflow.Dominance.compute f in
  check_bool "header dominates body" true (Dataflow.Dominance.dominates d 1 2);
  check_bool "header dominates exit" true (Dataflow.Dominance.dominates d 1 3);
  check_bool "body !dom header" false (Dataflow.Dominance.dominates d 2 1)

let dom_unreachable () =
  let f =
    build_func
      [ ([], Ir.Instr.Ret None); ([], Ir.Instr.Jmp 0) (* unreachable *) ]
  in
  let d = Dataflow.Dominance.compute f in
  check_bool "entry reachable" true (Dataflow.Dominance.reachable d 0);
  check_bool "dead block" false (Dataflow.Dominance.reachable d 1)

(* ------------------------------------------------------------------ *)
(* Post-dominance                                                      *)
(* ------------------------------------------------------------------ *)

let pdom_diamond () =
  let f = diamond () in
  let p = Dataflow.Dominance.compute_post f in
  check_bool "3 pdom 0" true (Dataflow.Dominance.post_dominates p 3 0);
  check_bool "3 pdom 1" true (Dataflow.Dominance.post_dominates p 3 1);
  check_bool "1 !pdom 0" false (Dataflow.Dominance.post_dominates p 1 0);
  check_bool "exit pdom all" true
    (Dataflow.Dominance.post_dominates p (Dataflow.Dominance.virtual_exit f) 0);
  Alcotest.(check (option int)) "ipdom 0" (Some 3) (Dataflow.Dominance.ipdom p 0);
  Alcotest.(check (option int)) "ipdom 3"
    (Some (Dataflow.Dominance.virtual_exit f))
    (Dataflow.Dominance.ipdom p 3)

let pdom_loop () =
  let f = simple_loop () in
  let p = Dataflow.Dominance.compute_post f in
  check_bool "header pdom body" true (Dataflow.Dominance.post_dominates p 1 2);
  check_bool "body !pdom header" false (Dataflow.Dominance.post_dominates p 2 1);
  check_bool "exit block pdom header" true
    (Dataflow.Dominance.post_dominates p 3 1)

let pdom_multi_exit () =
  (* Two returns: 0 -> 1 | 2, both Ret.  Only the virtual exit
     post-dominates the entry. *)
  let f =
    build_func
      [
        ([], Ir.Instr.Br (Ir.Instr.Imm 1, 1, 2));
        ([], Ir.Instr.Ret None);
        ([], Ir.Instr.Ret None);
      ]
  in
  let p = Dataflow.Dominance.compute_post f in
  let exit = Dataflow.Dominance.virtual_exit f in
  check_int "virtual exit label" 3 exit;
  check_bool "1 !pdom 0" false (Dataflow.Dominance.post_dominates p 1 0);
  check_bool "2 !pdom 0" false (Dataflow.Dominance.post_dominates p 2 0);
  check_bool "exit pdom 0" true (Dataflow.Dominance.post_dominates p exit 0);
  Alcotest.(check (option int)) "ipdom 0" (Some exit)
    (Dataflow.Dominance.ipdom p 0);
  check_bool "all reach exit" true
    (List.for_all (Dataflow.Dominance.reaches_exit p) [ 0; 1; 2 ])

let pdom_infinite_loop () =
  (* 0 -> 1 -> 1 (never returns): no block reaches an exit, so each
     post-dominates only itself. *)
  let f =
    build_func [ ([], Ir.Instr.Jmp 1); ([], Ir.Instr.Jmp 1) ]
  in
  let p = Dataflow.Dominance.compute_post f in
  check_bool "0 stuck" false (Dataflow.Dominance.reaches_exit p 0);
  check_bool "1 stuck" false (Dataflow.Dominance.reaches_exit p 1);
  check_bool "self only" true (Dataflow.Dominance.post_dominates p 1 1);
  check_bool "1 !pdom 0" false (Dataflow.Dominance.post_dominates p 1 0)

let pdom_points () =
  let f = diamond () in
  let p = Dataflow.Dominance.compute_post f in
  check_bool "later pdoms earlier in block" true
    (Dataflow.Dominance.post_dominates_point p (1, 3) (1, 0));
  check_bool "earlier !pdom later" false
    (Dataflow.Dominance.post_dominates_point p (1, 0) (1, 3));
  check_bool "join pdoms branch point" true
    (Dataflow.Dominance.post_dominates_point p (3, 0) (0, 5))

(* ------------------------------------------------------------------ *)
(* Loops                                                               *)
(* ------------------------------------------------------------------ *)

let loops_simple () =
  let f = simple_loop () in
  match Dataflow.Loops.find f with
  | [ l ] ->
    check_int "header" 1 l.Dataflow.Loops.header;
    Alcotest.(check (list int)) "body" [ 1; 2 ] l.Dataflow.Loops.body;
    Alcotest.(check (list int)) "latches" [ 2 ] l.Dataflow.Loops.back_edges;
    check_int "depth" 1 l.Dataflow.Loops.depth;
    Alcotest.(check (list (pair int int))) "exits" [ (1, 3) ]
      (Dataflow.Loops.exit_edges f l)
  | ls -> Alcotest.fail (Printf.sprintf "expected 1 loop, got %d" (List.length ls))

let loops_nested () =
  let f = nested_loops () in
  let ls = Dataflow.Loops.find f in
  check_int "two loops" 2 (List.length ls);
  let outer = Option.get (Dataflow.Loops.loop_of ls 1) in
  let inner = Option.get (Dataflow.Loops.loop_of ls 2) in
  check_int "outer depth" 1 outer.Dataflow.Loops.depth;
  check_int "inner depth" 2 inner.Dataflow.Loops.depth;
  Alcotest.(check (option int)) "inner parent" (Some 1) inner.Dataflow.Loops.parent;
  Alcotest.(check (option int)) "outer parent" None outer.Dataflow.Loops.parent;
  check_bool "inner body inside outer" true
    (List.for_all
       (fun b -> List.mem b outer.Dataflow.Loops.body)
       inner.Dataflow.Loops.body)

let loops_none () =
  let f = diamond () in
  check_int "no loops" 0 (List.length (Dataflow.Loops.find f))

let loops_self () =
  let f =
    build_func [ ([], Ir.Instr.Jmp 1); ([], Ir.Instr.Br (Ir.Instr.Imm 1, 1, 2)); ([], Ir.Instr.Ret None) ]
  in
  match Dataflow.Loops.find f with
  | [ l ] ->
    check_int "self header" 1 l.Dataflow.Loops.header;
    Alcotest.(check (list int)) "self body" [ 1 ] l.Dataflow.Loops.body
  | _ -> Alcotest.fail "expected one self loop"

(* ------------------------------------------------------------------ *)
(* Liveness                                                            *)
(* ------------------------------------------------------------------ *)

let liveness_basic () =
  (* r0 set in block 0, used in block 1; r1 defined and used only in 1. *)
  let f =
    build_func
      [
        ( [ mk_instr (Ir.Instr.Mov (0, Ir.Instr.Imm 1)) ],
          Ir.Instr.Jmp 1 );
        ( [
            mk_instr (Ir.Instr.Bin (Ir.Instr.Add, 1, Ir.Instr.Reg 0, Ir.Instr.Imm 2));
            mk_instr (Ir.Instr.Print (Ir.Instr.Reg 1));
          ],
          Ir.Instr.Ret None );
      ]
  in
  let live = Dataflow.Liveness.compute f in
  Alcotest.(check (list int)) "live into 1" [ 0 ] (Dataflow.Liveness.live_in live 1);
  Alcotest.(check (list int)) "live out of 0" [ 0 ] (Dataflow.Liveness.live_out live 0);
  Alcotest.(check (list int)) "nothing live into 0" [] (Dataflow.Liveness.live_in live 0)

let liveness_loop_carried () =
  (* Loop: header block 1 uses r0 (condition); body defines r0.  r0 is
     live into the header — the "communicating scalar" pattern. *)
  let f =
    build_func
      [
        ([ mk_instr (Ir.Instr.Mov (0, Ir.Instr.Imm 0)) ], Ir.Instr.Jmp 1);
        ([], Ir.Instr.Br (Ir.Instr.Reg 0, 3, 2));
        ( [ mk_instr (Ir.Instr.Bin (Ir.Instr.Add, 0, Ir.Instr.Reg 0, Ir.Instr.Imm 1)) ],
          Ir.Instr.Jmp 1 );
        ([], Ir.Instr.Ret None);
      ]
  in
  let live = Dataflow.Liveness.compute f in
  check_bool "carried" true (Dataflow.Liveness.is_live_in live 1 0);
  Alcotest.(check (list int)) "defs in loop" [ 0 ]
    (Dataflow.Liveness.defs_in_blocks f [ 1; 2 ])

let liveness_dead_def () =
  let f =
    build_func
      [
        ( [
            mk_instr (Ir.Instr.Mov (0, Ir.Instr.Imm 1));
            mk_instr (Ir.Instr.Mov (1, Ir.Instr.Imm 2));
            mk_instr (Ir.Instr.Print (Ir.Instr.Reg 1));
          ],
          Ir.Instr.Ret None );
      ]
  in
  let live = Dataflow.Liveness.compute f in
  Alcotest.(check (list int)) "no inputs" [] (Dataflow.Liveness.live_in live 0)

(* ------------------------------------------------------------------ *)
(* Generic solver                                                      *)
(* ------------------------------------------------------------------ *)

module Reach_domain = struct
  type fact = int list  (* sorted block labels that can reach here *)

  let equal = ( = )
  let bottom = []
  let boundary = []
  let join a b = List.sort_uniq compare (a @ b)
end

module Reach = Dataflow.Solver.Make (Reach_domain)

let solver_forward_reaching () =
  (* Which blocks can reach each block (including itself), diamond shape. *)
  let f = diamond () in
  let transfer l fact = List.sort_uniq compare (l :: fact) in
  let inputs, outputs = Reach.solve ~direction:Dataflow.Solver.Forward ~transfer f in
  Alcotest.(check (list int)) "into 3" [ 0; 1; 2 ] inputs.(3);
  Alcotest.(check (list int)) "out of 3" [ 0; 1; 2; 3 ] outputs.(3);
  Alcotest.(check (list int)) "into 1" [ 0 ] inputs.(1)

let solver_fixpoint_loop () =
  (* On a loop the solver must still terminate and include loop blocks. *)
  let f = simple_loop () in
  let transfer l fact = List.sort_uniq compare (l :: fact) in
  let _, outputs = Reach.solve ~direction:Dataflow.Solver.Forward ~transfer f in
  Alcotest.(check (list int)) "loop closure" [ 0; 1; 2 ] outputs.(2)

let () =
  Alcotest.run "dataflow"
    [
      ( "dominance",
        [
          Alcotest.test_case "diamond" `Quick dom_diamond;
          Alcotest.test_case "loop" `Quick dom_loop;
          Alcotest.test_case "unreachable" `Quick dom_unreachable;
        ] );
      ( "post-dominance",
        [
          Alcotest.test_case "diamond" `Quick pdom_diamond;
          Alcotest.test_case "loop" `Quick pdom_loop;
          Alcotest.test_case "multi-exit" `Quick pdom_multi_exit;
          Alcotest.test_case "infinite loop" `Quick pdom_infinite_loop;
          Alcotest.test_case "points" `Quick pdom_points;
        ] );
      ( "loops",
        [
          Alcotest.test_case "simple" `Quick loops_simple;
          Alcotest.test_case "nested" `Quick loops_nested;
          Alcotest.test_case "none" `Quick loops_none;
          Alcotest.test_case "self loop" `Quick loops_self;
        ] );
      ( "liveness",
        [
          Alcotest.test_case "basic" `Quick liveness_basic;
          Alcotest.test_case "loop carried" `Quick liveness_loop_carried;
          Alcotest.test_case "dead def" `Quick liveness_dead_def;
        ] );
      ( "solver",
        [
          Alcotest.test_case "forward reaching" `Quick solver_forward_reaching;
          Alcotest.test_case "loop fixpoint" `Quick solver_fixpoint_loop;
        ] );
    ]
