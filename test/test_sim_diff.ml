(* Differential oracle suite: the event-driven simulator core must be
   observably indistinguishable from the reference cycle-stepped engine
   (DESIGN §15).  Every run compares byte-for-byte:

   - the Simstats fingerprint (cycles, slots, violations, attribution,
     output, committed memory, region tables, cache/fault counters),
   - the fields the fingerprint deliberately excludes: finite-resource
     peaks and the per-channel / per-load bookkeeping assoc lists,
   - typed failures (Deadlock / Stuck / Resource_deadlock), payload
     included — both engines must wedge at the same cycle with the same
     diagnostic.

   The matrix crosses every workload with the three benchmarked
   simulator setups (unbounded C mode, finite-hardware bounds, sync
   scheduler), the PR2 fault catalog on the chain program, and a
   260-program Proggen sweep (200 unbounded + 60 under finite-hardware
   bounds).  Every differential run is three-way
   since PR10: the reference engine against the event engine with the
   flat icode encoding on AND off, so an icode lowering bug cannot hide
   behind a matching bug in the boxed dispatcher (or vice versa). *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Differential harness                                                *)
(* ------------------------------------------------------------------ *)

type outcome =
  | Finished of Tls.Simstats.result
  | E_deadlock of string
  | E_stuck of Tls.Sim.stuck_diag
  | E_resource of Tls.Sim.resource_diag
  | E_cycle_limit of int
  | E_failure of string

let run_engine engine cfg code input =
  let cfg = { cfg with Tls.Config.engine } in
  match Tls.Sim.run cfg code ~input () with
  | r -> Finished r
  | exception Tls.Sim.Deadlock msg -> E_deadlock msg
  | exception Tls.Sim.Stuck d -> E_stuck d
  | exception Tls.Sim.Resource_deadlock d -> E_resource d
  | exception Tls.Sim.Cycle_limit { cycle; _ } -> E_cycle_limit cycle
  | exception Failure msg -> E_failure msg

(* Compare the observables the fingerprint excludes by design (resource
   peaks, per-channel attributions) plus a few named fields so a
   divergence fails with a readable message before the digest check. *)
let check_results label (a : Tls.Simstats.result) (b : Tls.Simstats.result) =
  let n fld = label ^ " " ^ fld in
  check_int (n "total_cycles") a.Tls.Simstats.total_cycles
    b.Tls.Simstats.total_cycles;
  check_int (n "seq_cycles") a.Tls.Simstats.seq_cycles
    b.Tls.Simstats.seq_cycles;
  check_int (n "region_cycles") a.Tls.Simstats.region_cycles
    b.Tls.Simstats.region_cycles;
  check_int (n "busy slots") a.Tls.Simstats.slots.Tls.Simstats.s_busy
    b.Tls.Simstats.slots.Tls.Simstats.s_busy;
  check_int (n "sync slots") a.Tls.Simstats.slots.Tls.Simstats.s_sync
    b.Tls.Simstats.slots.Tls.Simstats.s_sync;
  check_int (n "other-stall slots")
    a.Tls.Simstats.slots.Tls.Simstats.s_other_stall
    b.Tls.Simstats.slots.Tls.Simstats.s_other_stall;
  check_int (n "fail slots") a.Tls.Simstats.slots.Tls.Simstats.s_fail
    b.Tls.Simstats.slots.Tls.Simstats.s_fail;
  check_int (n "total slots") a.Tls.Simstats.slots.Tls.Simstats.s_total
    b.Tls.Simstats.slots.Tls.Simstats.s_total;
  check_int (n "violations") a.Tls.Simstats.violations
    b.Tls.Simstats.violations;
  check_int (n "epochs committed") a.Tls.Simstats.epochs_committed
    b.Tls.Simstats.epochs_committed;
  check_int (n "epochs squashed") a.Tls.Simstats.epochs_squashed
    b.Tls.Simstats.epochs_squashed;
  Alcotest.(check (list int)) (n "output") a.Tls.Simstats.output
    b.Tls.Simstats.output;
  check_bool (n "committed memory") true
    (Runtime.Memory.equal a.Tls.Simstats.final_memory
       b.Tls.Simstats.final_memory);
  check_int (n "max signal buffer") a.Tls.Simstats.max_signal_buffer
    b.Tls.Simstats.max_signal_buffer;
  check_int (n "hw marked loads") a.Tls.Simstats.hw_marked_loads
    b.Tls.Simstats.hw_marked_loads;
  check_int (n "vpred predictions") a.Tls.Simstats.vpred_predictions
    b.Tls.Simstats.vpred_predictions;
  check_int (n "faults fired") a.Tls.Simstats.faults_fired
    b.Tls.Simstats.faults_fired;
  check_bool (n "attribution") true
    (a.Tls.Simstats.attribution = b.Tls.Simstats.attribution);
  check_bool (n "region cycle tables") true
    (a.Tls.Simstats.region_cycle_by_id = b.Tls.Simstats.region_cycle_by_id
    && a.Tls.Simstats.region_instances = b.Tls.Simstats.region_instances);
  check_bool (n "l1 miss rate") true
    (a.Tls.Simstats.l1_miss_rate = b.Tls.Simstats.l1_miss_rate);
  (* Excluded from the fingerprint; required identical regardless. *)
  check_bool (n "resource peaks") true
    (a.Tls.Simstats.resources = b.Tls.Simstats.resources);
  check_bool (n "per-channel sync stalls") true
    (a.Tls.Simstats.sync_stall_by_channel
    = b.Tls.Simstats.sync_stall_by_channel);
  check_bool (n "per-load violation counts") true
    (a.Tls.Simstats.violated_load_counts
    = b.Tls.Simstats.violated_load_counts);
  check_str (n "fingerprint")
    (Tls.Simstats.fingerprint a)
    (Tls.Simstats.fingerprint b)

let check_outcomes label a b =
  match (a, b) with
  | Finished ra, Finished rb -> check_results label ra rb
  | E_deadlock ma, E_deadlock mb -> check_str (label ^ " deadlock msg") ma mb
  | E_stuck da, E_stuck db ->
    (* The diagnostic is plain data (ints, strings, lists): structural
       equality is exactly byte equality here. *)
    check_bool (label ^ " stuck diag") true (da = db)
  | E_resource da, E_resource db ->
    check_bool (label ^ " resource diag") true (da = db)
  | E_cycle_limit ca, E_cycle_limit cb ->
    check_int (label ^ " cycle limit at") ca cb
  | E_failure ma, E_failure mb -> check_str (label ^ " failure msg") ma mb
  | _ ->
    let name = function
      | Finished _ -> "finished"
      | E_deadlock _ -> "deadlock"
      | E_stuck _ -> "stuck"
      | E_resource _ -> "resource-deadlock"
      | E_cycle_limit _ -> "cycle-limit"
      | E_failure _ -> "failure"
    in
    Alcotest.fail
      (Printf.sprintf "%s: engines disagree on outcome kind: ref=%s event=%s"
         label (name a) (name b))

let diff_run label cfg code input =
  let ra = run_engine Tls.Config.Engine_ref cfg code input in
  let rb =
    run_engine Tls.Config.Engine_event
      { cfg with Tls.Config.icode = true }
      code input
  in
  check_outcomes (label ^ "/icode") ra rb;
  let rc =
    run_engine Tls.Config.Engine_event
      { cfg with Tls.Config.icode = false }
      code input
  in
  check_outcomes (label ^ "/no-icode") ra rc

(* ------------------------------------------------------------------ *)
(* Workload matrix: 15 workloads x {unbounded, bounded, sync-sched}    *)
(* ------------------------------------------------------------------ *)

(* The finite-hardware bounds benchmarked as "sim_tls_bounded". *)
let bounded_cfg =
  {
    Tls.Config.c_mode with
    Tls.Config.sig_buffer_entries = 2;
    spec_lines_per_epoch = 8;
    fwd_queue_depth = 8;
  }

let compile_c ?(sync_sched = false) (w : Workloads.Workload.t) =
  Tlscore.Pipeline.compile ~sync_sched ~source:w.Workloads.Workload.source
    ~profile_input:w.Workloads.Workload.train_input
    ~memory_sync:
      (Tlscore.Pipeline.Profiled
         { dep_input = w.Workloads.Workload.train_input; threshold = 0.05 })
    ()

let workload_matrix (w : Workloads.Workload.t) () =
  let name = w.Workloads.Workload.name in
  let input = w.Workloads.Workload.ref_input in
  let compiled = compile_c w in
  let code = compiled.Tlscore.Pipeline.code in
  diff_run (name ^ "/unbounded") Tls.Config.c_mode code input;
  diff_run (name ^ "/bounded") bounded_cfg code input;
  let sched = compile_c ~sync_sched:true w in
  diff_run (name ^ "/sync-sched") Tls.Config.c_mode
    sched.Tlscore.Pipeline.code input

(* ------------------------------------------------------------------ *)
(* Fault catalog (PR2) on the chain program                            *)
(* ------------------------------------------------------------------ *)

(* Serial scalar chain through a global: every epoch needs its
   predecessor's store, so sync, forwarding, violations and the whole
   fault catalog are all on the hot path (same program test_faults
   pins its behavior on). *)
let chain_src =
  "int g;\n\
   int out[64];\n\
   int work(int x) { int j; int t; t = x; for (j = 0; j < 10 + x % 7; j = \
   j + 1) { t = t + ((t << 1) ^ j) % 53; } return t; }\n\
   void main() {\n\
  \  int i; int v;\n\
  \  for (i = 0; i < 40; i = i + 1) {\n\
  \    v = g;\n\
  \    out[i % 64] = work(v + i);\n\
  \    g = v + 1;\n\
  \  }\n\
  \  print(g);\n\
  \  print(out[5]);\n\
   }"

let compile_src src input =
  Tlscore.Pipeline.compile ~lint:false ~source:src ~profile_input:input
    ~memory_sync:
      (Tlscore.Pipeline.Profiled { dep_input = input; threshold = 0.05 })
    ()

let fault_catalog_diff () =
  let compiled = compile_src chain_src [||] in
  let code = compiled.Tlscore.Pipeline.code in
  List.iter
    (fun (label, faults) ->
      let cfg = { Tls.Config.c_mode with Tls.Config.sim_faults = faults } in
      diff_run ("fault/" ^ label) cfg code [||])
    [
      ("corrupt-addr", [ Tls.Config.Corrupt_addr 0 ]);
      ("corrupt-value", [ Tls.Config.Corrupt_value 0 ]);
      ("delay-signal", [ Tls.Config.Delay_signal { nth = 0; extra = 1_500 } ]);
      ("spurious-violation", [ Tls.Config.Spurious_violation 1 ]);
      ( "combined",
        [
          Tls.Config.Corrupt_addr 1;
          Tls.Config.Delay_signal { nth = 3; extra = 700 };
          Tls.Config.Spurious_violation 2;
        ] );
    ]

(* Drop_wakeup wedges the region; both engines must raise the same Stuck
   diagnostic (same cycle, same epoch states) through the watchdog. *)
let dropped_wakeup_diff () =
  let compiled = compile_src chain_src [||] in
  let cfg =
    {
      Tls.Config.c_mode with
      Tls.Config.sim_faults = [ Tls.Config.Drop_wakeup 0 ];
      watchdog_window = 4_000;
    }
  in
  diff_run "fault/drop-wakeup" cfg compiled.Tlscore.Pipeline.code [||]

(* Watchdog boundary, event engine: stalls of exactly [window] cycles
   never fire, the (window+1)-th always does — mirrored cycle-exactly
   from the reference-engine test in test_faults. *)
let watchdog_boundary_event_engine () =
  let compiled = compile_src chain_src [||] in
  let fire_cycle window =
    let cfg =
      {
        Tls.Config.c_mode with
        Tls.Config.engine = Tls.Config.Engine_event;
        sim_faults = [ Tls.Config.Drop_wakeup 0 ];
        watchdog_window = window;
      }
    in
    match Tls.Sim.run cfg compiled.Tlscore.Pipeline.code ~input:[||] () with
    | _ -> Alcotest.fail "expected Stuck (No_progress)"
    | exception Tls.Sim.Stuck d -> begin
      match d.Tls.Sim.sd_reason with
      | Tls.Sim.No_progress { window = reported } ->
        check_int "diagnostic reports the configured window" window reported;
        d.Tls.Sim.sd_cycle
      | Tls.Sim.Missing_wait _ ->
        Alcotest.fail "expected No_progress, got Missing_wait"
    end
  in
  let w = 4_000 in
  let at_wm1 = fire_cycle (w - 1) in
  let at_w = fire_cycle w in
  let at_wp1 = fire_cycle (w + 1) in
  check_int "window and window-1 fire one cycle apart" (at_wm1 + 1) at_w;
  check_int "window and window+1 fire one cycle apart" (at_w + 1) at_wp1;
  (* Same recovered last-progress cycle P across windows: sd_cycle =
     P + window + 1. *)
  check_int "same P recovered" (at_w - w) (at_wm1 - (w - 1))

(* Resource_deadlock must match typed-payload-exactly too: a producer
   backpressured on a depth-0 forwarding queue wedges both engines. *)
let resource_deadlock_diff () =
  let compiled = compile_src chain_src [||] in
  let cfg =
    {
      Tls.Config.c_mode with
      Tls.Config.fwd_queue_depth = 0;
      watchdog_window = 2_000;
    }
  in
  diff_run "resource/fwd-depth-0" cfg compiled.Tlscore.Pipeline.code [||]

(* ------------------------------------------------------------------ *)
(* Generated-program sweep                                             *)
(* ------------------------------------------------------------------ *)

let outcomes_agree a b =
  match (a, b) with
  | Finished a, Finished b ->
    String.equal (Tls.Simstats.fingerprint a) (Tls.Simstats.fingerprint b)
    && a.Tls.Simstats.resources = b.Tls.Simstats.resources
    && a.Tls.Simstats.sync_stall_by_channel
       = b.Tls.Simstats.sync_stall_by_channel
    && a.Tls.Simstats.violated_load_counts
       = b.Tls.Simstats.violated_load_counts
    && Runtime.Memory.equal a.Tls.Simstats.final_memory
         b.Tls.Simstats.final_memory
  | E_deadlock a, E_deadlock b -> String.equal a b
  | E_stuck a, E_stuck b -> a = b
  | E_resource a, E_resource b -> a = b
  | E_cycle_limit a, E_cycle_limit b -> a = b
  | E_failure a, E_failure b -> String.equal a b
  | _ -> false

let proggen_equivalence =
  QCheck.Test.make ~count:200
    ~name:"proggen: ref and event engines agree on every observable"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let source, input = Faults.Proggen.generate ~seed in
      let compiled = compile_src source input in
      let code = compiled.Tlscore.Pipeline.code in
      let ra = run_engine Tls.Config.Engine_ref Tls.Config.c_mode code input in
      let rb =
        run_engine Tls.Config.Engine_event Tls.Config.c_mode code input
      in
      let rc =
        run_engine Tls.Config.Engine_event
          { Tls.Config.c_mode with Tls.Config.icode = false }
          code input
      in
      outcomes_agree ra rb && outcomes_agree ra rc)

(* And under the finite-hardware bounds, where overflow squashes,
   signal drops and backpressure all engage. *)
let proggen_equivalence_bounded =
  QCheck.Test.make ~count:60
    ~name:"proggen: engines agree under finite-hardware bounds"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let source, input = Faults.Proggen.generate ~seed in
      let compiled = compile_src source input in
      let code = compiled.Tlscore.Pipeline.code in
      let ra = run_engine Tls.Config.Engine_ref bounded_cfg code input in
      let rb = run_engine Tls.Config.Engine_event bounded_cfg code input in
      let rc =
        run_engine Tls.Config.Engine_event
          { bounded_cfg with Tls.Config.icode = false }
          code input
      in
      outcomes_agree ra rb && outcomes_agree ra rc)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "sim_diff"
    [
      ( "workloads",
        List.map
          (fun (w : Workloads.Workload.t) ->
            Alcotest.test_case w.Workloads.Workload.name `Quick
              (workload_matrix w))
          Workloads.Registry.all );
      ( "faults",
        [
          Alcotest.test_case "fault catalog" `Quick fault_catalog_diff;
          Alcotest.test_case "dropped wakeup (watchdog)" `Quick
            dropped_wakeup_diff;
          Alcotest.test_case "watchdog boundary (event engine)" `Quick
            watchdog_boundary_event_engine;
          Alcotest.test_case "resource deadlock" `Quick resource_deadlock_diff;
        ] );
      ( "proggen",
        [
          QCheck_alcotest.to_alcotest proggen_equivalence;
          QCheck_alcotest.to_alcotest proggen_equivalence_bounded;
        ] );
    ]
