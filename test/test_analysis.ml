(* Synclint and points-to tests.

   The positive direction (the pipeline's own transformations lint clean)
   is covered by the clean-compile cases here and by the @lint expect test
   over every bundled workload.  The negative direction mutates the
   post-pass IR — removing waits, dropping or duplicating signals,
   rewriting channels and addresses — and checks that the right detector
   fires. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let compile ?(threshold = 0.05) src input =
  Tlscore.Pipeline.compile ~source:src ~profile_input:input
    ~memory_sync:(Tlscore.Pipeline.Profiled { dep_input = input; threshold })
    ()

let has_detector det findings =
  List.exists
    (fun (f : Analysis.Synclint.finding) ->
      String.equal f.Analysis.Synclint.f_detector det)
    findings

let pp_findings findings =
  String.concat "; " (List.map Analysis.Synclint.to_string findings)

(* ------------------------------------------------------------------ *)
(* Points-to                                                           *)
(* ------------------------------------------------------------------ *)

let pointsto_objects_and_alias () =
  let src =
    "int g; int a[8];\n\
     void main() { int i; for (i = 0; i < 8; i = i + 1) { a[i] = g + i; } g \
     = a[0]; print(g); }"
  in
  let prog = Ir.Lower.compile_source src in
  let pt = Analysis.Pointsto.analyze prog in
  check_int "two objects" 2 (Analysis.Pointsto.num_objects pt);
  let ga = Ir.Layout.global_addr prog.Ir.Prog.layout "g" in
  let aa = Ir.Layout.global_addr prog.Ir.Prog.layout "a" in
  (* The store to a[i] addresses through a register derived from a's base:
     its abstraction is exactly {a}. *)
  let store_addr = ref None in
  Ir.Func.iter_instrs (Ir.Prog.func prog "main") (fun _ i ->
      match i.Ir.Instr.kind with
      | Ir.Instr.Store ((Ir.Instr.Reg _ as op), _) ->
        store_addr := Some (Analysis.Pointsto.operand_addr pt "main" op)
      | _ -> ());
  let store_addr =
    match !store_addr with
    | Some x -> x
    | None -> Alcotest.fail "expected a pointer store in main"
  in
  (match store_addr with
  | Analysis.Pointsto.Objects s -> begin
    match Analysis.Pointsto.Int_set.elements s with
    | [ o ] ->
      Alcotest.(check string)
        "points only into a" "a"
        (Analysis.Pointsto.object_name pt o)
    | os ->
      Alcotest.fail
        (Printf.sprintf "expected a single object, got %d" (List.length os))
  end
  | _ -> Alcotest.fail "expected an Objects abstraction");
  check_bool "same exact address aliases" true
    (Analysis.Pointsto.may_alias pt (Analysis.Pointsto.Exact ga)
       (Analysis.Pointsto.Exact ga));
  check_bool "distinct exact addresses do not" false
    (Analysis.Pointsto.may_alias pt (Analysis.Pointsto.Exact ga)
       (Analysis.Pointsto.Exact aa));
  check_bool "a[i] store may alias a[2]" true
    (Analysis.Pointsto.may_alias pt store_addr
       (Analysis.Pointsto.Exact (aa + 2)));
  check_bool "a[i] store cannot alias g" false
    (Analysis.Pointsto.may_alias pt store_addr (Analysis.Pointsto.Exact ga));
  check_bool "unknown aliases everything" true
    (Analysis.Pointsto.may_alias pt Analysis.Pointsto.Unknown
       (Analysis.Pointsto.Exact ga))

let pointsto_flows_through_calls () =
  (* The callee stores through its pointer parameter; the argument is
     derived from a's base, so the store must land (only) in a. *)
  let src =
    "int g; int a[8];\n\
     void put(int* p, int v) { *p = v; }\n\
     void main() { int i; for (i = 0; i < 8; i = i + 1) { put(&a[i], i); } \
     print(a[3] + g); }"
  in
  let prog = Ir.Lower.compile_source src in
  let pt = Analysis.Pointsto.analyze prog in
  let ga = Ir.Layout.global_addr prog.Ir.Prog.layout "g" in
  let aa = Ir.Layout.global_addr prog.Ir.Prog.layout "a" in
  let store_addr = ref None in
  Ir.Func.iter_instrs (Ir.Prog.func prog "put") (fun _ i ->
      match i.Ir.Instr.kind with
      | Ir.Instr.Store (op, _) ->
        store_addr := Some (Analysis.Pointsto.operand_addr pt "put" op)
      | _ -> ());
  match !store_addr with
  | Some abs ->
    check_bool "callee store may hit a" true
      (Analysis.Pointsto.may_alias pt abs (Analysis.Pointsto.Exact (aa + 1)));
    check_bool "callee store cannot hit g" false
      (Analysis.Pointsto.may_alias pt abs (Analysis.Pointsto.Exact ga))
  | None -> Alcotest.fail "expected a store in put"

(* ------------------------------------------------------------------ *)
(* Clean transformed programs                                          *)
(* ------------------------------------------------------------------ *)

(* The static-address memory-sync shape from the memsync tests: one
   region, one static group on g. *)
let memsync_src =
  "int g;\n\
   int pad0;\n\
   int work(int x) { int j; int t; t = x; for (j = 0; j < 8; j = j + 1) { \
   t = t + ((t << 1) ^ j) % 53; } return t; }\n\
   int a[64];\n\
   void main() {\n\
  \  int i; int v;\n\
  \  for (i = 0; i < 30; i = i + 1) {\n\
  \    v = g;\n\
  \    a[i % 64] = work(v + i);\n\
  \    g = v + 1;\n\
  \  }\n\
  \  print(g);\n\
   }"

(* One region, one static group on g.  Mutation tests below reuse this. *)
let compiled_region () =
  let c = compile memsync_src [||] in
  let prog = c.Tlscore.Pipeline.prog in
  match prog.Ir.Prog.regions with
  | [ region ] when region.Ir.Region.mem_groups <> [] -> (c, prog, region)
  | _ -> Alcotest.fail "setup: expected one region with a memory group"

let lint_clean_on_transformed () =
  let c, _, _ = compiled_region () in
  Alcotest.(check (list string))
    "transformed program lints clean" []
    (List.map Analysis.Synclint.to_string c.Tlscore.Pipeline.lint_findings)

let lint_clean_on_pointer_group () =
  (* A pointer-varying group (eager signals, latch nulls) must also lint
     clean — in particular the repeated eager signals are not flagged. *)
  let src =
    "int slots[128]; int head;\n\
     int work(int x) { int j; int t; t = x; for (j = 0; j < 9; j = j + 1) \
     { t = t + ((t << 1) ^ j) % 71; } return t; }\n\
     void main() {\n\
    \  int i; int v;\n\
    \  for (i = 0; i < 40; i = i + 1) {\n\
    \    v = slots[head % 128];\n\
    \    slots[(head + i) % 128] = work(v + i);\n\
    \    if (i % 2 == 0) { head = head + 1; }\n\
    \  }\n\
    \  print(head + slots[0]);\n\
     }"
  in
  let c = compile src [||] in
  check_bool
    (Printf.sprintf "no findings, got: %s"
       (pp_findings c.Tlscore.Pipeline.lint_findings))
    true
    (c.Tlscore.Pipeline.lint_findings = [])

(* ------------------------------------------------------------------ *)
(* Mutation tests: one per detector                                    *)
(* ------------------------------------------------------------------ *)

let remove_kinds (f : Ir.Func.t) pred =
  Array.iter
    (fun (b : Ir.Func.block) ->
      b.Ir.Func.instrs <-
        List.filter
          (fun (i : Ir.Instr.t) -> not (pred i.Ir.Instr.kind))
          b.Ir.Func.instrs)
    f.Ir.Func.blocks

let map_kinds (f : Ir.Func.t) fn =
  Array.iter
    (fun (b : Ir.Func.block) ->
      b.Ir.Func.instrs <-
        List.map
          (fun (i : Ir.Instr.t) -> { i with Ir.Instr.kind = fn i.Ir.Instr.kind })
          b.Ir.Func.instrs)
    f.Ir.Func.blocks

let expect det prog =
  let findings = Analysis.Synclint.run_prog prog in
  check_bool
    (Printf.sprintf "%s detected, got: %s" det (pp_findings findings))
    true (has_detector det findings)

let lint_catches_missing_wait () =
  let _, prog, _ = compiled_region () in
  remove_kinds (Ir.Prog.func prog "main") (function
    | Ir.Instr.Wait_mem _ -> true
    | _ -> false);
  expect "dominance" prog

let lint_catches_missing_signal () =
  let _, prog, _ = compiled_region () in
  remove_kinds (Ir.Prog.func prog "main") (function
    | Ir.Instr.Signal_mem _ | Ir.Instr.Signal_mem_if_unsent _ -> true
    | _ -> false);
  expect "signal-exactness" prog

let lint_catches_double_signal () =
  let _, prog, _ = compiled_region () in
  let f = Ir.Prog.func prog "main" in
  (* Duplicate the first unconditional memory signal in place. *)
  let duplicated = ref false in
  Array.iter
    (fun (b : Ir.Func.block) ->
      b.Ir.Func.instrs <-
        List.concat_map
          (fun (i : Ir.Instr.t) ->
            match i.Ir.Instr.kind with
            | Ir.Instr.Signal_mem _ when not !duplicated ->
              duplicated := true;
              [
                i;
                {
                  Ir.Instr.iid =
                    Ir.Prog.fresh_iid prog ~in_func:"main" ~what:"dup signal";
                  kind = i.Ir.Instr.kind;
                };
              ]
            | _ -> [ i ])
          b.Ir.Func.instrs)
    f.Ir.Func.blocks;
  check_bool "setup: found a signal to duplicate" true !duplicated;
  expect "double-signal" prog

let lint_catches_self_deadlock () =
  let _, prog, region = compiled_region () in
  let f = Ir.Prog.func prog "main" in
  let g = List.hd region.Ir.Region.mem_groups in
  let ch = g.Ir.Region.mg_id in
  (* The group's forwarded address, from its checked load. *)
  let addr = ref None in
  Ir.Func.iter_instrs f (fun _ i ->
      match i.Ir.Instr.kind with
      | Ir.Instr.Sync_load (ch', _, a) when ch' = ch -> addr := Some a
      | _ -> ());
  let addr = Option.get !addr in
  (* Signal unconditionally at the very top of the epoch, before the
     group's wait. *)
  let b = Ir.Func.block f region.Ir.Region.header in
  b.Ir.Func.instrs <-
    {
      Ir.Instr.iid =
        Ir.Prog.fresh_iid prog ~in_func:"main" ~what:"early signal";
      kind = Ir.Instr.Signal_mem (ch, addr);
    }
    :: b.Ir.Func.instrs;
  expect "self-deadlock" prog

let lint_catches_foreign_channel () =
  let _, prog, _ = compiled_region () in
  (* Retarget the memory signals to a channel no region owns. *)
  map_kinds (Ir.Prog.func prog "main") (function
    | Ir.Instr.Signal_mem (_, a) -> Ir.Instr.Signal_mem (9999, a)
    | k -> k);
  expect "foreign-channel" prog

let lint_catches_dead_group () =
  let _, prog, _ = compiled_region () in
  (* Redirect the checked load to an unrelated global: the group's store
     (to g) can no longer feed its load (from pad0). *)
  let pad = Ir.Layout.global_addr prog.Ir.Prog.layout "pad0" in
  map_kinds (Ir.Prog.func prog "main") (function
    | Ir.Instr.Sync_load (ch, d, _) ->
      Ir.Instr.Sync_load (ch, d, Ir.Instr.Imm pad)
    | k -> k);
  expect "dead-sync-group" prog

let lint_flags_profile_under_coverage () =
  (* h is read every epoch but written only on an input-dependent path the
     training input never takes: a may inter-epoch RAW the profile never
     observed. *)
  let src =
    "int g; int h; int a[64];\n\
     int work(int x) { int j; int t; t = x; for (j = 0; j < 8; j = j + 1) \
     { t = t + ((t << 1) ^ j) % 53; } return t; }\n\
     void main() {\n\
    \  int i; int v;\n\
    \  for (i = 0; i < 30; i = i + 1) {\n\
    \    v = g;\n\
    \    a[i % 64] = work(v + i + h);\n\
    \    g = v + 1;\n\
    \    if (in(0) == 1) { h = i; }\n\
    \  }\n\
    \  print(g + h);\n\
     }"
  in
  let c = compile src [| 0 |] in
  check_bool
    (Printf.sprintf "under-coverage flagged, got: %s"
       (pp_findings c.Tlscore.Pipeline.lint_findings))
    true
    (has_detector "profile-under-coverage" c.Tlscore.Pipeline.lint_findings);
  check_bool "only warnings" true
    (List.for_all
       (fun (f : Analysis.Synclint.finding) ->
         f.Analysis.Synclint.f_severity = Analysis.Synclint.Warning)
       c.Tlscore.Pipeline.lint_findings);
  (* Trained on an input that exercises the store, the dependence is
     either observed or synchronized away: clean. *)
  let trained = compile src [| 1 |] in
  check_bool
    (Printf.sprintf "clean when trained, got: %s"
       (pp_findings trained.Tlscore.Pipeline.lint_findings))
    true
    (trained.Tlscore.Pipeline.lint_findings = [])

(* ------------------------------------------------------------------ *)
(* Sync scheduling                                                     *)
(* ------------------------------------------------------------------ *)

let seq_output prog input =
  let code = Runtime.Code.of_prog prog in
  let mem = Runtime.Memory.create () in
  Runtime.Thread.run_sequential code ~input mem

(* Flat program-order position of the first instruction satisfying
   [pred]. *)
let flat_index (f : Ir.Func.t) pred =
  let n = ref 0 and found = ref None in
  Ir.Func.iter_instrs f (fun _ i ->
      if !found = None && pred i then found := Some !n;
      incr n);
  match !found with
  | Some k -> k
  | None -> Alcotest.fail "expected instruction not found"

let main_loops src =
  List.filter
    (fun (k : Profiler.Profile.loop_key) ->
      String.equal k.Profiler.Profile.lk_func "main")
    (Profiler.Runner.all_loops (Ir.Lower.compile_source src))

(* Force selection of main's loops: the scheduling tests use bodies too
   small for the selection heuristics. *)
let compile_forced ?(sync_sched = false) src input =
  Tlscore.Pipeline.compile ~selection:(main_loops src) ~sync_sched
    ~source:src ~profile_input:input
    ~memory_sync:
      (Tlscore.Pipeline.Profiled { dep_input = input; threshold = 0.05 })
    ()

(* The forwarded value [w] is computed at the top of the epoch but
   stored (and signaled) only at the bottom: hoisting the store + signal
   pair past the independent filler is exactly the slack the scheduler
   must find. *)
let slack_src =
  "int g; int a[64];\n\
   void main() {\n\
  \  int i; int v; int w; int t;\n\
  \  for (i = 0; i < 30; i = i + 1) {\n\
  \    v = g;\n\
  \    w = v + 1;\n\
  \    t = i * 3;\n\
  \    t = (t ^ 5) + i;\n\
  \    t = t + (i << 2);\n\
  \    a[i % 64] = t;\n\
  \    g = w;\n\
  \  }\n\
  \  print(g);\n\
   }"

let is_signal_mem (i : Ir.Instr.t) =
  match i.Ir.Instr.kind with Ir.Instr.Signal_mem _ -> true | _ -> false

let sched_hoists_and_preserves () =
  let naive = compile_forced slack_src [||] in
  let sched = compile_forced ~sync_sched:true slack_src [||] in
  let s = sched.Tlscore.Pipeline.sched_stats in
  check_bool "hoisted a store+signal pair" true
    (s.Analysis.Syncsched.ss_signals_hoisted >= 1);
  check_bool "crossed at least one slot" true
    (s.Analysis.Syncsched.ss_slots >= 1);
  let pos c =
    flat_index (Ir.Prog.func c.Tlscore.Pipeline.prog "main") is_signal_mem
  in
  check_bool "signal hoisted past the filler" true (pos sched < pos naive);
  Alcotest.(check (list string))
    "scheduled program lints clean" []
    (List.map Analysis.Synclint.to_string sched.Tlscore.Pipeline.lint_findings);
  Alcotest.(check (list int))
    "sequential output preserved"
    (seq_output (Tlscore.Pipeline.original ~source:slack_src) [||])
    (seq_output sched.Tlscore.Pipeline.prog [||])

let sched_blocked_by_may_alias_store () =
  (* Same program, but with a store to the forwarded location planted
     right above the store+signal pair: the may-alias check must pin the
     pair below it (contrast with [sched_hoists_and_preserves], where the
     same pair hoists). *)
  let naive = compile_forced slack_src [||] in
  let prog = naive.Tlscore.Pipeline.prog in
  let f = Ir.Prog.func prog "main" in
  let ga = Ir.Layout.global_addr prog.Ir.Prog.layout "g" in
  let plant_iid = Ir.Prog.fresh_iid prog ~in_func:"main" ~what:"alias store" in
  let plant =
    {
      Ir.Instr.iid = plant_iid;
      kind = Ir.Instr.Store (Ir.Instr.Imm ga, Ir.Instr.Imm 123);
    }
  in
  let planted = ref false in
  Array.iter
    (fun (b : Ir.Func.block) ->
      let rec rewrite = function
        | ({ Ir.Instr.kind = Ir.Instr.Store (Ir.Instr.Imm a, _); _ } as st)
          :: (sg :: _ as rest)
          when a = ga && is_signal_mem sg ->
          planted := true;
          plant :: st :: rewrite rest
        | i :: rest -> i :: rewrite rest
        | [] -> []
      in
      b.Ir.Func.instrs <- rewrite b.Ir.Func.instrs)
    f.Ir.Func.blocks;
  check_bool "setup: planted above the pair" true !planted;
  let stats = Analysis.Syncsched.apply prog in
  check_int "pair not hoisted" 0 stats.Analysis.Syncsched.ss_signals_hoisted;
  check_bool "signal still below the may-alias store" true
    (flat_index f (fun i -> i.Ir.Instr.iid = plant_iid)
    < flat_index f is_signal_mem)

let sched_stops_at_redefinition () =
  (* Carried scalars whose rotation follows independent filler: the waits
     sink past the filler but must stop exactly at the first definition
     or use of their register (the loop-carried redefinition). *)
  let src =
    "int a[32];\n\
     void main() {\n\
    \  int i; int last; int t;\n\
    \  last = 0;\n\
    \  for (i = 0; i < 8; i = i + 1) {\n\
    \    last = last + 3;\n\
    \    t = i * 5;\n\
    \    t = t ^ 9;\n\
    \    a[i % 32] = t + last;\n\
    \  }\n\
    \  print(last);\n\
     }"
  in
  let c = compile_forced src [||] in
  let prog = c.Tlscore.Pipeline.prog in
  let f = Ir.Prog.func prog "main" in
  let stats = Analysis.Syncsched.apply prog in
  check_bool "a wait sank" true (stats.Analysis.Syncsched.ss_waits_sunk >= 1);
  (* Every wait sank as far as its register allows: the instruction now
     below it defines or uses that register. *)
  let checked = ref 0 in
  Array.iter
    (fun (b : Ir.Func.block) ->
      let rec scan = function
        | ({ Ir.Instr.kind = Ir.Instr.Wait_scalar (_, r); _ } : Ir.Instr.t)
          :: (next :: _ as rest) ->
          incr checked;
          check_bool "wait stopped at its register's def/use" true
            (List.mem r (Ir.Instr.defs next @ Ir.Instr.uses next));
          scan rest
        | _ :: rest -> scan rest
        | [] -> ()
      in
      scan b.Ir.Func.instrs)
    f.Ir.Func.blocks;
  check_bool "setup: saw scalar waits" true (!checked >= 1);
  Alcotest.(check (list int))
    "sequential output preserved"
    (seq_output (Tlscore.Pipeline.original ~source:src) [||])
    (seq_output prog [||])

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec scan i = i + m <= n && (String.sub s i m = sub || scan (i + 1)) in
  scan 0

let sched_inlines_post_call_signal () =
  (* The go workload's record__clone call produces the forwarded value
     well before returning: the scheduler moves the post-call signal into
     the (single-call-site) clone and leaves a guarded signal behind. *)
  let w =
    match Workloads.Registry.find "go" with
    | Some w -> w
    | None -> Alcotest.fail "go workload missing"
  in
  let input = w.Workloads.Workload.ref_input in
  let sched =
    Tlscore.Pipeline.compile ~sync_sched:true
      ~source:w.Workloads.Workload.source ~profile_input:input
      ~memory_sync:
        (Tlscore.Pipeline.Profiled { dep_input = input; threshold = 0.05 })
      ()
  in
  let s = sched.Tlscore.Pipeline.sched_stats in
  check_bool "inlined a post-call signal" true
    (s.Analysis.Syncsched.ss_signals_inlined >= 1);
  let prog = sched.Tlscore.Pipeline.prog in
  let func_has (f : Ir.Func.t) pred =
    let found = ref false in
    Ir.Func.iter_instrs f (fun _ i -> if pred i.Ir.Instr.kind then found := true);
    !found
  in
  check_bool "signal moved into a clone" true
    (List.exists
       (fun (name, f) ->
         contains name "__clone"
         && func_has f (function Ir.Instr.Signal_mem _ -> true | _ -> false))
       prog.Ir.Prog.funcs);
  check_bool "guarded signal left at the call site" true
    (List.exists
       (fun (_, f) ->
         func_has f (function
           | Ir.Instr.Signal_mem_if_unsent _ -> true
           | _ -> false))
       prog.Ir.Prog.funcs);
  Alcotest.(check (list string))
    "scheduled go lints clean" []
    (List.map Analysis.Synclint.to_string sched.Tlscore.Pipeline.lint_findings);
  Alcotest.(check (list int))
    "sequential output preserved"
    (seq_output (Tlscore.Pipeline.original ~source:w.Workloads.Workload.source)
       input)
    (seq_output prog input)

(* ------------------------------------------------------------------ *)
(* Static cost model                                                   *)
(* ------------------------------------------------------------------ *)

let test_params =
  {
    Analysis.Staticcost.issue_width = 4;
    lat_mul = 3;
    lat_div = 12;
    forward_latency = 10;
    spawn_overhead = 10;
    track_line_words = Some 8;
  }

let staticcost_estimates_are_sane () =
  let c = compile memsync_src [||] in
  let prog = c.Tlscore.Pipeline.prog in
  let profile = Profiler.Runner.run prog ~input:[||] ~watch:[] in
  match Analysis.Staticcost.analyze test_params profile prog with
  | [ rc ] ->
    check_bool "profiled epochs" true (rc.Analysis.Staticcost.rc_epochs > 0);
    check_bool "has channels" true
      (rc.Analysis.Staticcost.rc_channels <> []);
    List.iter
      (fun (cc : Analysis.Staticcost.channel_cost) ->
        check_bool "distances nonnegative" true
          (cc.Analysis.Staticcost.cc_producer >= 0.
          && cc.Analysis.Staticcost.cc_consumer >= 0.);
        check_bool "stall nonnegative" true
          (cc.Analysis.Staticcost.cc_stall >= 0.);
        check_bool "total nonnegative" true
          (cc.Analysis.Staticcost.cc_total >= 0.))
      rc.Analysis.Staticcost.rc_channels;
    check_bool "violation set sorted and valid" true
      (let v = rc.Analysis.Staticcost.rc_violations in
       List.sort compare v = v)
  | l ->
    Alcotest.fail
      (Printf.sprintf "expected one region cost, got %d" (List.length l))

let falseshare_src =
  "int g;\n\
   int pad0;\n\
   int work(int x) { int j; int t; t = x; for (j = 0; j < 8; j = j + 1) { \
   t = t + ((t << 1) ^ j) % 53; } return t; }\n\
   int a[64];\n\
   void main() {\n\
  \  int i; int v; int w;\n\
  \  for (i = 0; i < 30; i = i + 1) {\n\
  \    v = g;\n\
  \    w = pad0;\n\
  \    a[i % 64] = work(v + w + i);\n\
  \    g = v + 1;\n\
  \  }\n\
  \  print(g);\n\
   }"

let staticcost_predicts_false_sharing () =
  (* pad0 is never stored, so its load cannot conflict at word
     granularity — but it shares a cache line with g, whose store the
     line-granular simulator will see as a conflict. *)
  let c = compile falseshare_src [||] in
  let prog = c.Tlscore.Pipeline.prog in
  let region =
    match prog.Ir.Prog.regions with
    | r :: _ -> r
    | [] -> Alcotest.fail "setup: expected a region"
  in
  let pt = Analysis.Pointsto.analyze prog in
  let ga = Ir.Layout.global_addr prog.Ir.Prog.layout "g" in
  let pa = Ir.Layout.global_addr prog.Ir.Prog.layout "pad0" in
  check_int "setup: g and pad0 share a cache line" (ga / 8) (pa / 8);
  let pad_load = ref None in
  Ir.Func.iter_instrs (Ir.Prog.func prog "main") (fun _ i ->
      match i.Ir.Instr.kind with
      | Ir.Instr.Load (_, Ir.Instr.Imm a) when a = pa ->
        pad_load := Some i.Ir.Instr.iid
      | _ -> ());
  let pad_load =
    match !pad_load with
    | Some iid -> iid
    | None -> Alcotest.fail "setup: expected a load of pad0"
  in
  let by_line =
    Analysis.Staticcost.predicted_violations pt test_params prog region
  in
  let by_word =
    Analysis.Staticcost.predicted_violations pt
      { test_params with Analysis.Staticcost.track_line_words = None }
      prog region
  in
  check_bool "false sharing predicted at line granularity" true
    (List.mem pad_load by_line);
  check_bool "not flagged at word granularity" false
    (List.mem pad_load by_word)

let lint_precomputed_pointsto_matches () =
  (* Break the group so the lint has findings, then check the
     precomputed-points-to entry point agrees with the self-computed
     one. *)
  let _, prog, _ = compiled_region () in
  let pad = Ir.Layout.global_addr prog.Ir.Prog.layout "pad0" in
  map_kinds (Ir.Prog.func prog "main") (function
    | Ir.Instr.Sync_load (ch, d, _) ->
      Ir.Instr.Sync_load (ch, d, Ir.Instr.Imm pad)
    | k -> k);
  let pt = Analysis.Pointsto.analyze prog in
  let self = Analysis.Synclint.run_prog prog in
  let pre = Analysis.Synclint.run_prog ~pointsto:pt prog in
  check_bool "findings nonempty" true (self <> []);
  Alcotest.(check (list string))
    "identical findings"
    (List.map Analysis.Synclint.to_string self)
    (List.map Analysis.Synclint.to_string pre)

let () =
  Alcotest.run "analysis"
    [
      ( "pointsto",
        [
          Alcotest.test_case "objects and alias" `Quick
            pointsto_objects_and_alias;
          Alcotest.test_case "flows through calls" `Quick
            pointsto_flows_through_calls;
        ] );
      ( "synclint clean",
        [
          Alcotest.test_case "static group" `Quick lint_clean_on_transformed;
          Alcotest.test_case "pointer group" `Quick lint_clean_on_pointer_group;
        ] );
      ( "synclint detectors",
        [
          Alcotest.test_case "dominance" `Quick lint_catches_missing_wait;
          Alcotest.test_case "signal exactness" `Quick
            lint_catches_missing_signal;
          Alcotest.test_case "double signal" `Quick lint_catches_double_signal;
          Alcotest.test_case "self deadlock" `Quick lint_catches_self_deadlock;
          Alcotest.test_case "foreign channel" `Quick
            lint_catches_foreign_channel;
          Alcotest.test_case "dead sync group" `Quick lint_catches_dead_group;
          Alcotest.test_case "profile under-coverage" `Quick
            lint_flags_profile_under_coverage;
          Alcotest.test_case "precomputed points-to" `Quick
            lint_precomputed_pointsto_matches;
        ] );
      ( "syncsched",
        [
          Alcotest.test_case "hoists and preserves" `Quick
            sched_hoists_and_preserves;
          Alcotest.test_case "may-alias store blocks" `Quick
            sched_blocked_by_may_alias_store;
          Alcotest.test_case "stops at redefinition" `Quick
            sched_stops_at_redefinition;
          Alcotest.test_case "inlines post-call signal" `Quick
            sched_inlines_post_call_signal;
        ] );
      ( "staticcost",
        [
          Alcotest.test_case "sane estimates" `Quick
            staticcost_estimates_are_sane;
          Alcotest.test_case "false sharing" `Quick
            staticcost_predicts_false_sharing;
        ] );
    ]
