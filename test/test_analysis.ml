(* Synclint and points-to tests.

   The positive direction (the pipeline's own transformations lint clean)
   is covered by the clean-compile cases here and by the @lint expect test
   over every bundled workload.  The negative direction mutates the
   post-pass IR — removing waits, dropping or duplicating signals,
   rewriting channels and addresses — and checks that the right detector
   fires. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let compile ?(threshold = 0.05) src input =
  Tlscore.Pipeline.compile ~source:src ~profile_input:input
    ~memory_sync:(Tlscore.Pipeline.Profiled { dep_input = input; threshold })
    ()

let has_detector det findings =
  List.exists
    (fun (f : Analysis.Synclint.finding) ->
      String.equal f.Analysis.Synclint.f_detector det)
    findings

let pp_findings findings =
  String.concat "; " (List.map Analysis.Synclint.to_string findings)

(* ------------------------------------------------------------------ *)
(* Points-to                                                           *)
(* ------------------------------------------------------------------ *)

let pointsto_objects_and_alias () =
  let src =
    "int g; int a[8];\n\
     void main() { int i; for (i = 0; i < 8; i = i + 1) { a[i] = g + i; } g \
     = a[0]; print(g); }"
  in
  let prog = Ir.Lower.compile_source src in
  let pt = Analysis.Pointsto.analyze prog in
  check_int "two objects" 2 (Analysis.Pointsto.num_objects pt);
  let ga = Ir.Layout.global_addr prog.Ir.Prog.layout "g" in
  let aa = Ir.Layout.global_addr prog.Ir.Prog.layout "a" in
  (* The store to a[i] addresses through a register derived from a's base:
     its abstraction is exactly {a}. *)
  let store_addr = ref None in
  Ir.Func.iter_instrs (Ir.Prog.func prog "main") (fun _ i ->
      match i.Ir.Instr.kind with
      | Ir.Instr.Store ((Ir.Instr.Reg _ as op), _) ->
        store_addr := Some (Analysis.Pointsto.operand_addr pt "main" op)
      | _ -> ());
  let store_addr =
    match !store_addr with
    | Some x -> x
    | None -> Alcotest.fail "expected a pointer store in main"
  in
  (match store_addr with
  | Analysis.Pointsto.Objects s -> begin
    match Analysis.Pointsto.Int_set.elements s with
    | [ o ] ->
      Alcotest.(check string)
        "points only into a" "a"
        (Analysis.Pointsto.object_name pt o)
    | os ->
      Alcotest.fail
        (Printf.sprintf "expected a single object, got %d" (List.length os))
  end
  | _ -> Alcotest.fail "expected an Objects abstraction");
  check_bool "same exact address aliases" true
    (Analysis.Pointsto.may_alias pt (Analysis.Pointsto.Exact ga)
       (Analysis.Pointsto.Exact ga));
  check_bool "distinct exact addresses do not" false
    (Analysis.Pointsto.may_alias pt (Analysis.Pointsto.Exact ga)
       (Analysis.Pointsto.Exact aa));
  check_bool "a[i] store may alias a[2]" true
    (Analysis.Pointsto.may_alias pt store_addr
       (Analysis.Pointsto.Exact (aa + 2)));
  check_bool "a[i] store cannot alias g" false
    (Analysis.Pointsto.may_alias pt store_addr (Analysis.Pointsto.Exact ga));
  check_bool "unknown aliases everything" true
    (Analysis.Pointsto.may_alias pt Analysis.Pointsto.Unknown
       (Analysis.Pointsto.Exact ga))

let pointsto_flows_through_calls () =
  (* The callee stores through its pointer parameter; the argument is
     derived from a's base, so the store must land (only) in a. *)
  let src =
    "int g; int a[8];\n\
     void put(int* p, int v) { *p = v; }\n\
     void main() { int i; for (i = 0; i < 8; i = i + 1) { put(&a[i], i); } \
     print(a[3] + g); }"
  in
  let prog = Ir.Lower.compile_source src in
  let pt = Analysis.Pointsto.analyze prog in
  let ga = Ir.Layout.global_addr prog.Ir.Prog.layout "g" in
  let aa = Ir.Layout.global_addr prog.Ir.Prog.layout "a" in
  let store_addr = ref None in
  Ir.Func.iter_instrs (Ir.Prog.func prog "put") (fun _ i ->
      match i.Ir.Instr.kind with
      | Ir.Instr.Store (op, _) ->
        store_addr := Some (Analysis.Pointsto.operand_addr pt "put" op)
      | _ -> ());
  match !store_addr with
  | Some abs ->
    check_bool "callee store may hit a" true
      (Analysis.Pointsto.may_alias pt abs (Analysis.Pointsto.Exact (aa + 1)));
    check_bool "callee store cannot hit g" false
      (Analysis.Pointsto.may_alias pt abs (Analysis.Pointsto.Exact ga))
  | None -> Alcotest.fail "expected a store in put"

(* ------------------------------------------------------------------ *)
(* Clean transformed programs                                          *)
(* ------------------------------------------------------------------ *)

(* The static-address memory-sync shape from the memsync tests: one
   region, one static group on g. *)
let memsync_src =
  "int g;\n\
   int pad0;\n\
   int work(int x) { int j; int t; t = x; for (j = 0; j < 8; j = j + 1) { \
   t = t + ((t << 1) ^ j) % 53; } return t; }\n\
   int a[64];\n\
   void main() {\n\
  \  int i; int v;\n\
  \  for (i = 0; i < 30; i = i + 1) {\n\
  \    v = g;\n\
  \    a[i % 64] = work(v + i);\n\
  \    g = v + 1;\n\
  \  }\n\
  \  print(g);\n\
   }"

(* One region, one static group on g.  Mutation tests below reuse this. *)
let compiled_region () =
  let c = compile memsync_src [||] in
  let prog = c.Tlscore.Pipeline.prog in
  match prog.Ir.Prog.regions with
  | [ region ] when region.Ir.Region.mem_groups <> [] -> (c, prog, region)
  | _ -> Alcotest.fail "setup: expected one region with a memory group"

let lint_clean_on_transformed () =
  let c, _, _ = compiled_region () in
  Alcotest.(check (list string))
    "transformed program lints clean" []
    (List.map Analysis.Synclint.to_string c.Tlscore.Pipeline.lint_findings)

let lint_clean_on_pointer_group () =
  (* A pointer-varying group (eager signals, latch nulls) must also lint
     clean — in particular the repeated eager signals are not flagged. *)
  let src =
    "int slots[128]; int head;\n\
     int work(int x) { int j; int t; t = x; for (j = 0; j < 9; j = j + 1) \
     { t = t + ((t << 1) ^ j) % 71; } return t; }\n\
     void main() {\n\
    \  int i; int v;\n\
    \  for (i = 0; i < 40; i = i + 1) {\n\
    \    v = slots[head % 128];\n\
    \    slots[(head + i) % 128] = work(v + i);\n\
    \    if (i % 2 == 0) { head = head + 1; }\n\
    \  }\n\
    \  print(head + slots[0]);\n\
     }"
  in
  let c = compile src [||] in
  check_bool
    (Printf.sprintf "no findings, got: %s"
       (pp_findings c.Tlscore.Pipeline.lint_findings))
    true
    (c.Tlscore.Pipeline.lint_findings = [])

(* ------------------------------------------------------------------ *)
(* Mutation tests: one per detector                                    *)
(* ------------------------------------------------------------------ *)

let remove_kinds (f : Ir.Func.t) pred =
  Array.iter
    (fun (b : Ir.Func.block) ->
      b.Ir.Func.instrs <-
        List.filter
          (fun (i : Ir.Instr.t) -> not (pred i.Ir.Instr.kind))
          b.Ir.Func.instrs)
    f.Ir.Func.blocks

let map_kinds (f : Ir.Func.t) fn =
  Array.iter
    (fun (b : Ir.Func.block) ->
      b.Ir.Func.instrs <-
        List.map
          (fun (i : Ir.Instr.t) -> { i with Ir.Instr.kind = fn i.Ir.Instr.kind })
          b.Ir.Func.instrs)
    f.Ir.Func.blocks

let expect det prog =
  let findings = Analysis.Synclint.run_prog prog in
  check_bool
    (Printf.sprintf "%s detected, got: %s" det (pp_findings findings))
    true (has_detector det findings)

let lint_catches_missing_wait () =
  let _, prog, _ = compiled_region () in
  remove_kinds (Ir.Prog.func prog "main") (function
    | Ir.Instr.Wait_mem _ -> true
    | _ -> false);
  expect "dominance" prog

let lint_catches_missing_signal () =
  let _, prog, _ = compiled_region () in
  remove_kinds (Ir.Prog.func prog "main") (function
    | Ir.Instr.Signal_mem _ | Ir.Instr.Signal_mem_if_unsent _ -> true
    | _ -> false);
  expect "signal-exactness" prog

let lint_catches_double_signal () =
  let _, prog, _ = compiled_region () in
  let f = Ir.Prog.func prog "main" in
  (* Duplicate the first unconditional memory signal in place. *)
  let duplicated = ref false in
  Array.iter
    (fun (b : Ir.Func.block) ->
      b.Ir.Func.instrs <-
        List.concat_map
          (fun (i : Ir.Instr.t) ->
            match i.Ir.Instr.kind with
            | Ir.Instr.Signal_mem _ when not !duplicated ->
              duplicated := true;
              [
                i;
                {
                  Ir.Instr.iid =
                    Ir.Prog.fresh_iid prog ~in_func:"main" ~what:"dup signal";
                  kind = i.Ir.Instr.kind;
                };
              ]
            | _ -> [ i ])
          b.Ir.Func.instrs)
    f.Ir.Func.blocks;
  check_bool "setup: found a signal to duplicate" true !duplicated;
  expect "double-signal" prog

let lint_catches_self_deadlock () =
  let _, prog, region = compiled_region () in
  let f = Ir.Prog.func prog "main" in
  let g = List.hd region.Ir.Region.mem_groups in
  let ch = g.Ir.Region.mg_id in
  (* The group's forwarded address, from its checked load. *)
  let addr = ref None in
  Ir.Func.iter_instrs f (fun _ i ->
      match i.Ir.Instr.kind with
      | Ir.Instr.Sync_load (ch', _, a) when ch' = ch -> addr := Some a
      | _ -> ());
  let addr = Option.get !addr in
  (* Signal unconditionally at the very top of the epoch, before the
     group's wait. *)
  let b = Ir.Func.block f region.Ir.Region.header in
  b.Ir.Func.instrs <-
    {
      Ir.Instr.iid =
        Ir.Prog.fresh_iid prog ~in_func:"main" ~what:"early signal";
      kind = Ir.Instr.Signal_mem (ch, addr);
    }
    :: b.Ir.Func.instrs;
  expect "self-deadlock" prog

let lint_catches_foreign_channel () =
  let _, prog, _ = compiled_region () in
  (* Retarget the memory signals to a channel no region owns. *)
  map_kinds (Ir.Prog.func prog "main") (function
    | Ir.Instr.Signal_mem (_, a) -> Ir.Instr.Signal_mem (9999, a)
    | k -> k);
  expect "foreign-channel" prog

let lint_catches_dead_group () =
  let _, prog, _ = compiled_region () in
  (* Redirect the checked load to an unrelated global: the group's store
     (to g) can no longer feed its load (from pad0). *)
  let pad = Ir.Layout.global_addr prog.Ir.Prog.layout "pad0" in
  map_kinds (Ir.Prog.func prog "main") (function
    | Ir.Instr.Sync_load (ch, d, _) ->
      Ir.Instr.Sync_load (ch, d, Ir.Instr.Imm pad)
    | k -> k);
  expect "dead-sync-group" prog

let lint_flags_profile_under_coverage () =
  (* h is read every epoch but written only on an input-dependent path the
     training input never takes: a may inter-epoch RAW the profile never
     observed. *)
  let src =
    "int g; int h; int a[64];\n\
     int work(int x) { int j; int t; t = x; for (j = 0; j < 8; j = j + 1) \
     { t = t + ((t << 1) ^ j) % 53; } return t; }\n\
     void main() {\n\
    \  int i; int v;\n\
    \  for (i = 0; i < 30; i = i + 1) {\n\
    \    v = g;\n\
    \    a[i % 64] = work(v + i + h);\n\
    \    g = v + 1;\n\
    \    if (in(0) == 1) { h = i; }\n\
    \  }\n\
    \  print(g + h);\n\
     }"
  in
  let c = compile src [| 0 |] in
  check_bool
    (Printf.sprintf "under-coverage flagged, got: %s"
       (pp_findings c.Tlscore.Pipeline.lint_findings))
    true
    (has_detector "profile-under-coverage" c.Tlscore.Pipeline.lint_findings);
  check_bool "only warnings" true
    (List.for_all
       (fun (f : Analysis.Synclint.finding) ->
         f.Analysis.Synclint.f_severity = Analysis.Synclint.Warning)
       c.Tlscore.Pipeline.lint_findings);
  (* Trained on an input that exercises the store, the dependence is
     either observed or synchronized away: clean. *)
  let trained = compile src [| 1 |] in
  check_bool
    (Printf.sprintf "clean when trained, got: %s"
       (pp_findings trained.Tlscore.Pipeline.lint_findings))
    true
    (trained.Tlscore.Pipeline.lint_findings = [])

let () =
  Alcotest.run "analysis"
    [
      ( "pointsto",
        [
          Alcotest.test_case "objects and alias" `Quick
            pointsto_objects_and_alias;
          Alcotest.test_case "flows through calls" `Quick
            pointsto_flows_through_calls;
        ] );
      ( "synclint clean",
        [
          Alcotest.test_case "static group" `Quick lint_clean_on_transformed;
          Alcotest.test_case "pointer group" `Quick lint_clean_on_pointer_group;
        ] );
      ( "synclint detectors",
        [
          Alcotest.test_case "dominance" `Quick lint_catches_missing_wait;
          Alcotest.test_case "signal exactness" `Quick
            lint_catches_missing_signal;
          Alcotest.test_case "double signal" `Quick lint_catches_double_signal;
          Alcotest.test_case "self deadlock" `Quick lint_catches_self_deadlock;
          Alcotest.test_case "foreign channel" `Quick
            lint_catches_foreign_channel;
          Alcotest.test_case "dead sync group" `Quick lint_catches_dead_group;
          Alcotest.test_case "profile under-coverage" `Quick
            lint_flags_profile_under_coverage;
        ] );
    ]
