(* Determinism of the simulator and of the Domain-parallel runner.

   Two invariants hold the whole evaluation pipeline together:

   1. The simulator is a deterministic function of (program, input,
      config): running the same seed twice yields byte-identical
      Simstats once the wall-clock/allocation counters are stripped
      (they are measurements of the host, not of the simulated machine,
      and are excluded from the fingerprint by construction).

   2. The Jobs worker pool is a drop-in for List.map: results come back
      in input order whatever the domain count, so the chaos matrix and
      the figure tables render byte-identical output serial vs
      `--jobs N`. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let compile_synced src input =
  Tlscore.Pipeline.compile ~lint:false ~source:src ~profile_input:input
    ~memory_sync:
      (Tlscore.Pipeline.Profiled { dep_input = input; threshold = 0.05 })
    ()

(* ------------------------------------------------------------------ *)
(* Jobs pool: order, degradation, exceptions                           *)
(* ------------------------------------------------------------------ *)

let jobs_map_is_list_map () =
  let items = List.init 257 (fun i -> i) in
  let f i = (i * i) - (3 * i) in
  let expected = List.map f items in
  List.iter
    (fun jobs ->
      Alcotest.(check (list int))
        (Printf.sprintf "jobs=%d preserves order" jobs)
        expected
        (Harness.Jobs.map ~jobs f items))
    [ 1; 2; 4; 7 ]

let jobs_map_edge_cases () =
  Alcotest.(check (list int)) "empty list" [] (Harness.Jobs.map ~jobs:4 (fun i -> i) []);
  Alcotest.(check (list int)) "singleton" [ 9 ] (Harness.Jobs.map ~jobs:4 (fun i -> i * 9) [ 1 ]);
  check_int "jobs below 1 clamps to serial" 6
    (List.length (Harness.Jobs.map ~jobs:0 (fun i -> i) [ 1; 2; 3; 4; 5; 6 ]));
  check_bool "available is positive" true (Harness.Jobs.available () >= 1)

let jobs_serial_pool_is_serial () =
  (* jobs=1 must never spawn a domain: side effects happen in order on
     the calling domain. *)
  let trace = ref [] in
  let self = Domain.self () in
  let _ =
    (Harness.Jobs.create ~jobs:1 ()).Harness.Jobs.map
      (fun i ->
        check_bool "runs on calling domain" true (Domain.self () = self);
        trace := i :: !trace;
        i)
      [ 1; 2; 3 ]
  in
  Alcotest.(check (list int)) "in-order side effects" [ 3; 2; 1 ] !trace

let jobs_reraises_lowest_index_error () =
  (* When several jobs fail, the error for the lowest input index wins,
     so a parallel run fails with the same exception a serial run
     would. *)
  List.iter
    (fun jobs ->
      match
        Harness.Jobs.map ~jobs
          (fun i -> if i mod 3 = 2 then failwith (Printf.sprintf "boom %d" i) else i)
          (List.init 20 (fun i -> i))
      with
      | _ -> Alcotest.fail "expected Failure"
      | exception Failure msg ->
        check_str (Printf.sprintf "jobs=%d lowest failure wins" jobs) "boom 2" msg)
    [ 1; 4 ]

(* ------------------------------------------------------------------ *)
(* Simulator determinism: same seed, byte-identical Simstats           *)
(* ------------------------------------------------------------------ *)

let sim_runs_for_seed seed =
  let src, input = Faults.Proggen.generate ~seed in
  let compiled = compile_synced src input in
  let run () = Tls.Sim.run Tls.Config.c_mode compiled.Tlscore.Pipeline.code ~input () in
  let seq () =
    Tls.Sim.run_sequential Tls.Config.default
      (Runtime.Code.of_prog (Tlscore.Pipeline.original ~source:src))
      ~input ~track:compiled.Tlscore.Pipeline.code.Runtime.Code.regions
  in
  ((run (), run ()), (seq (), seq ()))

let same_seed_same_fingerprint =
  QCheck.Test.make ~count:8 ~name:"same seed yields byte-identical Simstats"
    QCheck.(int_range 0 30)
    (fun seed ->
      let (r1, r2), (s1, s2) = sim_runs_for_seed seed in
      String.equal (Tls.Simstats.fingerprint r1) (Tls.Simstats.fingerprint r2)
      && String.equal
           (Tls.Simstats.seq_fingerprint s1)
           (Tls.Simstats.seq_fingerprint s2)
      (* The stripped records really are structurally equal, memory
         included — the fingerprint is not hiding a difference. *)
      && Tls.Simstats.strip_runtime r1 = Tls.Simstats.strip_runtime r2
         [@warning "-57"])

let fingerprints_separate_programs () =
  let ((r5, _), (s5, _)) = sim_runs_for_seed 5 in
  let ((r6, _), (s6, _)) = sim_runs_for_seed 6 in
  check_bool "TLS fingerprints differ across programs" false
    (String.equal (Tls.Simstats.fingerprint r5) (Tls.Simstats.fingerprint r6));
  check_bool "sequential fingerprints differ across programs" false
    (String.equal (Tls.Simstats.seq_fingerprint s5) (Tls.Simstats.seq_fingerprint s6))

(* Fingerprints digest only what the simulated machine did: host-side
   runtime counters and the DESIGN §12 resource accounting must both be
   invisible.  The perturbation mutates every excluded counter to an
   arbitrary value and the digest must not move; strip_runtime must be
   idempotent (stripping is a projection, not an accumulating edit). *)
let fingerprint_ignores_host_counters =
  QCheck.Test.make ~count:16
    ~name:"fingerprint invariant under runtime/resource perturbation"
    QCheck.(pair (int_range 0 10) (int_range 1 1_000_000))
    (fun (seed, k) ->
      let (r, _), (s, _) = sim_runs_for_seed seed in
      let fp = Tls.Simstats.fingerprint r in
      let sfp = Tls.Simstats.seq_fingerprint s in
      let stripped = Tls.Simstats.strip_runtime r in
      let perturbed =
        {
          r with
          Tls.Simstats.runtime =
            {
              Tls.Simstats.rt_wall_ns = k;
              rt_minor_words = float_of_int k *. 1.5;
              rt_major_words = float_of_int k *. 0.25;
            };
        }
      in
      (* The resource counters are mutable on purpose (the sim bumps
         them in place); scribbling over every one of them must leave
         the digest untouched. *)
      let rs = perturbed.Tls.Simstats.resources in
      rs.Tls.Simstats.rs_sig_drops <- k;
      rs.Tls.Simstats.rs_spec_overflows <- k + 1;
      rs.Tls.Simstats.rs_spec_stalls <- k + 2;
      rs.Tls.Simstats.rs_spec_squashes <- k + 3;
      rs.Tls.Simstats.rs_bp_signals <- k + 4;
      rs.Tls.Simstats.rs_bp_slots <- k + 5;
      rs.Tls.Simstats.rs_peak_spec_lines <- k + 6;
      rs.Tls.Simstats.rs_peak_fwd_queue <- k + 7;
      rs.Tls.Simstats.rs_hw_evictions <- k + 8;
      rs.Tls.Simstats.rs_peak_hw_table <- k + 9;
      let s_perturbed =
        {
          s with
          Tls.Simstats.sq_runtime =
            {
              Tls.Simstats.rt_wall_ns = k;
              rt_minor_words = float_of_int k;
              rt_major_words = float_of_int k;
            };
        }
      in
      String.equal fp (Tls.Simstats.fingerprint perturbed)
      && String.equal sfp (Tls.Simstats.seq_fingerprint s_perturbed)
      && Tls.Simstats.strip_runtime stripped = stripped [@warning "-57"])

let runtime_counters_populated () =
  (* The counters exist (wall time advanced, allocation was measured),
     and stripping them is what makes reruns identical.  The allocation
     probe uses the ref engine: the event engine can run a tiny
     generated program without a single minor-heap allocation, which
     would make [> 0] vacuous as a plumbing check. *)
  let (r1, _), (s1, _) = sim_runs_for_seed 3 in
  check_bool "tls wall_ns > 0" true (r1.Tls.Simstats.runtime.Tls.Simstats.rt_wall_ns > 0);
  check_bool "tls minor words >= 0" true
    (r1.Tls.Simstats.runtime.Tls.Simstats.rt_minor_words >= 0.0);
  let src, input = Faults.Proggen.generate ~seed:3 in
  let compiled = compile_synced src input in
  let ref_run =
    Tls.Sim.run
      { Tls.Config.c_mode with Tls.Config.engine = Tls.Config.Engine_ref }
      compiled.Tlscore.Pipeline.code ~input ()
  in
  check_bool "ref engine minor words > 0" true
    (ref_run.Tls.Simstats.runtime.Tls.Simstats.rt_minor_words > 0.0);
  check_bool "seq wall_ns > 0" true
    (s1.Tls.Simstats.sq_runtime.Tls.Simstats.rt_wall_ns > 0);
  check_bool "strip_runtime zeroes counters" true
    ((Tls.Simstats.strip_runtime r1).Tls.Simstats.runtime = Tls.Simstats.no_runtime)

(* The event engine's whole point is constant-factor elimination: flat
   mutable scratch instead of per-cycle maps/closures.  Guard the win
   with a GC regression — a change that quietly reintroduces per-cycle
   allocation shows up here long before it shows up on a wall clock. *)
let event_engine_allocation_regression () =
  let w =
    match Workloads.Registry.find "parser" with
    | Some w -> w
    | None -> Alcotest.fail "missing bundled benchmark parser"
  in
  let compiled =
    compile_synced w.Workloads.Workload.source w.Workloads.Workload.train_input
  in
  let minor_words engine =
    let cfg = { Tls.Config.c_mode with Tls.Config.engine } in
    let r =
      Tls.Sim.run cfg compiled.Tlscore.Pipeline.code
        ~input:w.Workloads.Workload.ref_input ()
    in
    r.Tls.Simstats.runtime.Tls.Simstats.rt_minor_words
  in
  let ref_words = minor_words Tls.Config.Engine_ref in
  let event_words = minor_words Tls.Config.Engine_event in
  check_bool "both engines allocate something" true
    (ref_words > 0.0 && event_words > 0.0);
  check_bool
    (Printf.sprintf
       "event engine allocates >=5x fewer minor words (ref %.0f, event %.0f)"
       ref_words event_words)
    true
    (ref_words >= 5.0 *. event_words)

(* ------------------------------------------------------------------ *)
(* Parallel matrix == serial matrix, byte for byte                     *)
(* ------------------------------------------------------------------ *)

let program_of_workload name =
  match Workloads.Registry.find name with
  | Some w ->
    {
      Faults.Chaos.p_name = w.Workloads.Workload.name;
      p_source = w.Workloads.Workload.source;
      p_train = w.Workloads.Workload.train_input;
      p_ref = w.Workloads.Workload.ref_input;
      p_select_main = false;
    }
  | None -> Alcotest.fail ("missing bundled benchmark " ^ name)

let chaos_programs () =
  [ program_of_workload "twolf" ] @ Faults.Chaos.fuzz_programs ~count:1 ~seed:7

let render_matrix map =
  let log = Buffer.create 1024 in
  let cells =
    Faults.Chaos.run_matrix
      ~log:(fun s ->
        Buffer.add_string log s;
        Buffer.add_char log '\n')
      ~map
      ~modes:[ ("U", Tls.Config.u_mode); ("C", Tls.Config.c_mode) ]
      ~faults:Faults.Fault.catalog (chaos_programs ())
  in
  Buffer.contents log ^ "\n" ^ Faults.Chaos.render_table cells

let parallel_chaos_is_byte_identical () =
  let serial = render_matrix (fun f l -> List.map f l) in
  let pool = Harness.Jobs.create ~jobs:4 () in
  let parallel = render_matrix pool.Harness.Jobs.map in
  check_str "chaos log+table bytes" serial parallel

let parallel_figures_are_byte_identical () =
  let ctxs =
    List.map
      (fun name ->
        match Workloads.Registry.find name with
        | Some w -> Harness.Context.make w
        | None -> Alcotest.fail ("missing bundled benchmark " ^ name))
      [ "mcf"; "twolf" ]
  in
  let pool = Harness.Jobs.create ~jobs:4 () in
  List.iter
    (fun (label, render) ->
      check_str (label ^ " bytes")
        (render Harness.Jobs.serial ctxs)
        (render pool ctxs))
    [
      ("fig2", fun pool ctxs -> Harness.Figures.fig2 ~pool ctxs);
      ("fig6", fun pool ctxs -> Harness.Figures.fig6 ~pool ctxs);
      ("table2", fun pool ctxs -> Harness.Figures.table2 ~pool ctxs);
    ]

let () =
  Alcotest.run "determinism"
    [
      ( "jobs",
        [
          Alcotest.test_case "map equals List.map" `Quick jobs_map_is_list_map;
          Alcotest.test_case "edge cases" `Quick jobs_map_edge_cases;
          Alcotest.test_case "jobs=1 stays on calling domain" `Quick
            jobs_serial_pool_is_serial;
          Alcotest.test_case "lowest-index error wins" `Quick
            jobs_reraises_lowest_index_error;
        ] );
      ( "simulator",
        [
          QCheck_alcotest.to_alcotest same_seed_same_fingerprint;
          QCheck_alcotest.to_alcotest fingerprint_ignores_host_counters;
          Alcotest.test_case "fingerprints separate programs" `Quick
            fingerprints_separate_programs;
          Alcotest.test_case "runtime counters populated" `Quick
            runtime_counters_populated;
          Alcotest.test_case "event engine allocates >=5x less" `Slow
            event_engine_allocation_regression;
        ] );
      ( "parallel-vs-serial",
        [
          Alcotest.test_case "chaos matrix byte-identical" `Slow
            parallel_chaos_is_byte_identical;
          Alcotest.test_case "figures byte-identical" `Slow
            parallel_figures_are_byte_identical;
        ] );
    ]
