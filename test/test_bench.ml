(* The bench JSON schema: emitter and validator must agree (roundtrip),
   and the validator must reject documents that drift from the schema —
   wrong version, wrong units, a workload missing a phase, a sim phase
   without its cycle count, malformed matrix fields. *)

let check_bool = Alcotest.(check bool)

let find_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i =
    if i + m > n then None
    else if String.sub s i m = sub then Some i
    else go (i + 1)
  in
  go 0

let contains s sub = find_sub s sub <> None

let phase ?cycles ?ref_wall ?icode_off_wall ?commits ?aborts ?(wall = 1_000)
    name =
  {
    Harness.Bench.ph_name = name;
    ph_wall_ns = wall;
    ph_ref_wall_ns = ref_wall;
    ph_icode_off_wall_ns = icode_off_wall;
    ph_minor_words = 10.0;
    ph_major_words = 2.0;
    ph_cycles = cycles;
    ph_commits = commits;
    ph_aborts = aborts;
  }

let serve_phase ?(requests = 10) ?(completed = 10) ?(shed = 0) ?(degraded = 0)
    ?(hits = 5) ?(misses = 5) ?(p50 = 100) ?(p99 = 900) name =
  {
    Harness.Bench.sv_name = name;
    sv_requests = requests;
    sv_completed = completed;
    sv_shed = shed;
    sv_degraded = degraded;
    sv_cache_hits = hits;
    sv_cache_misses = misses;
    sv_wall_ns = 10_000;
    sv_p50_ns = p50;
    sv_p99_ns = p99;
  }

let serve_phases =
  [
    serve_phase ~hits:0 ~misses:10 "serve_cold";
    serve_phase ~hits:10 ~misses:0 "serve_warm";
    serve_phase ~requests:20 ~completed:10 ~shed:10 "serve_burst";
  ]

let doc ?matrix ?(serve = []) () =
  {
    Harness.Bench.bench_schema_version = Harness.Bench.schema_version;
    bench_workloads =
      [
        {
          Harness.Bench.wb_name = "toy";
          wb_phases =
            List.map
              (fun n ->
                if List.mem n Harness.Bench.dual_engine_phase_names then
                  phase ~cycles:42 ~ref_wall:5_000 ~icode_off_wall:2_000 n
                else if n = Harness.Bench.exec_phase_name then
                  phase ~commits:7 ~aborts:3 n
                else if String.length n >= 4 && String.sub n 0 4 = "sim_" then
                  phase ~cycles:42 n
                else phase n)
              Harness.Bench.phase_names;
        };
      ];
    bench_matrix = matrix;
    bench_serve = serve;
  }

let matrix =
  {
    Harness.Bench.mx_name = "chaos";
    mx_cells = 12;
    mx_jobs = 4;
    mx_serial_wall_ns = 5_000;
    mx_parallel_wall_ns = 3_000;
  }

let roundtrip_validates () =
  (match Harness.Bench.validate_string (Harness.Bench.to_json (doc ())) with
  | Ok summary ->
    check_bool "summary mentions workload" true
      (String.length summary > 0
      && contains summary "toy")
  | Error msg -> Alcotest.fail ("roundtrip rejected: " ^ msg));
  match
    Harness.Bench.validate_string (Harness.Bench.to_json (doc ~matrix ()))
  with
  | Ok summary ->
    check_bool "summary mentions matrix" true
      (contains summary "matrix chaos")
  | Error msg -> Alcotest.fail ("matrix roundtrip rejected: " ^ msg)

let serve_roundtrip_validates () =
  match
    Harness.Bench.validate_string
      (Harness.Bench.to_json (doc ~matrix ~serve:serve_phases ()))
  with
  | Ok summary ->
    List.iter
      (fun name ->
        check_bool ("summary mentions " ^ name) true (contains summary name))
      Harness.Bench.serve_phase_names;
    check_bool "summary pins burst shedding" true
      (contains summary "shed=10")
  | Error msg -> Alcotest.fail ("serve roundtrip rejected: " ^ msg)

(* Corrupt one aspect of a valid document and check the validator names
   the right field. *)
let rejects label mangle needle =
  let json = mangle (Harness.Bench.to_json (doc ~matrix ())) in
  match Harness.Bench.validate_string json with
  | Ok _ -> Alcotest.fail (label ^ ": expected a schema violation")
  | Error msg ->
    check_bool
      (Printf.sprintf "%s: error %S mentions %S" label msg needle)
      true
      (contains msg needle)

let replace ~from ~into s =
  match find_sub s from with
  | None -> Alcotest.fail ("replace: " ^ from ^ " not present")
  | Some i ->
    String.sub s 0 i ^ into
    ^ String.sub s
        (i + String.length from)
        (String.length s - i - String.length from)

let schema_violations_are_rejected () =
  rejects "wrong version"
    (replace ~from:"\"schema_version\": 9" ~into:"\"schema_version\": 2")
    "schema_version";
  rejects "wrong wall unit"
    (replace ~from:"\"wall\": \"ns\"" ~into:"\"wall\": \"ms\"")
    "units.wall";
  rejects "missing phase"
    (replace
       ~from:"{ \"phase\": \"lower\", \"wall_ns\": 1000, \"minor_words\": 10, \
              \"major_words\": 2 },\n"
       ~into:"")
    "lower";
  rejects "sim phase without cycles"
    (replace
       ~from:"\"major_words\": 2, \"cycles\": 42 }"
       ~into:"\"major_words\": 2 }")
    "cycles";
  rejects "exec phase without commits"
    (replace ~from:", \"commits\": 7" ~into:"")
    "commits";
  rejects "exec phase without aborts"
    (replace ~from:", \"aborts\": 3" ~into:"")
    "aborts";
  rejects "negative aborts"
    (replace ~from:"\"aborts\": 3" ~into:"\"aborts\": -1")
    "aborts";
  rejects "commits on a sim phase"
    (replace
       ~from:"\"phase\": \"sim_seq\", \"wall_ns\": 1000"
       ~into:"\"phase\": \"sim_seq\", \"wall_ns\": 1000, \"commits\": 7")
    "must not carry commits";
  rejects "cycles on the exec phase"
    (replace
       ~from:"\"phase\": \"exec_tls\", \"wall_ns\": 1000"
       ~into:"\"phase\": \"exec_tls\", \"wall_ns\": 1000, \"cycles\": 42")
    "must not carry cycles";
  rejects "tls phase without ref_wall_ns"
    (replace ~from:", \"ref_wall_ns\": 5000" ~into:"")
    "ref_wall_ns";
  rejects "negative ref_wall_ns"
    (replace ~from:"\"ref_wall_ns\": 5000" ~into:"\"ref_wall_ns\": -1")
    "ref_wall_ns";
  rejects "ref_wall_ns on a single-engine phase"
    (replace
       ~from:"\"phase\": \"sim_seq\", \"wall_ns\": 1000"
       ~into:"\"phase\": \"sim_seq\", \"wall_ns\": 1000, \"ref_wall_ns\": 900")
    "must not carry ref_wall_ns";
  rejects "tls phase without icode_off_wall_ns"
    (replace ~from:", \"icode_off_wall_ns\": 2000" ~into:"")
    "icode_off_wall_ns";
  rejects "negative icode_off_wall_ns"
    (replace ~from:"\"icode_off_wall_ns\": 2000"
       ~into:"\"icode_off_wall_ns\": -1")
    "icode_off_wall_ns";
  rejects "icode_off_wall_ns on a single-engine phase"
    (replace
       ~from:"\"phase\": \"sim_seq\", \"wall_ns\": 1000"
       ~into:
         "\"phase\": \"sim_seq\", \"wall_ns\": 1000, \"icode_off_wall_ns\": \
          900")
    "must not carry icode_off_wall_ns";
  rejects "negative wall time"
    (replace ~from:"\"wall_ns\": 1000" ~into:"\"wall_ns\": -5")
    "wall_ns";
  rejects "bad matrix cells"
    (replace ~from:"\"cells\": 12" ~into:"\"cells\": 0")
    "matrix.cells";
  rejects "matrix missing jobs"
    (replace ~from:"\"jobs\": 4, " ~into:"")
    "matrix.jobs";
  rejects "not json" (fun _ -> "{ nope") "parse error";
  rejects "empty workloads"
    (fun _ ->
      Harness.Bench.to_json
        { (doc ()) with Harness.Bench.bench_workloads = [] })
    "workloads"

(* Same idea, against a document carrying the v6 serve section. *)
let serve_rejects label mangle needle =
  let json =
    mangle (Harness.Bench.to_json (doc ~matrix ~serve:serve_phases ()))
  in
  match Harness.Bench.validate_string json with
  | Ok _ -> Alcotest.fail (label ^ ": expected a schema violation")
  | Error msg ->
    check_bool
      (Printf.sprintf "%s: error %S mentions %S" label msg needle)
      true (contains msg needle)

let serve_violations_are_rejected () =
  serve_rejects "unknown serve phase"
    (replace ~from:"\"phase\": \"serve_cold\"" ~into:"\"phase\": \"serve_hot\"")
    "serve_hot";
  serve_rejects "shed accounting broken"
    (fun _ ->
      Harness.Bench.to_json
        (doc ~matrix
           ~serve:
             [
               serve_phase ~hits:0 ~misses:10 "serve_cold";
               serve_phase ~hits:10 ~misses:0 "serve_warm";
               serve_phase ~requests:20 ~completed:10 ~shed:5 "serve_burst";
             ]
           ()))
    "must equal requests";
  serve_rejects "hits exceed completed"
    (fun _ ->
      Harness.Bench.to_json
        (doc ~matrix
           ~serve:
             [
               serve_phase ~hits:11 ~misses:0 "serve_cold";
               serve_phase ~hits:10 ~misses:0 "serve_warm";
               serve_phase ~requests:20 ~completed:10 ~shed:10 "serve_burst";
             ]
           ())) "cache_hits";
  serve_rejects "p50 above p99"
    (fun _ ->
      Harness.Bench.to_json
        (doc ~matrix
           ~serve:
             [
               serve_phase ~p50:900 ~p99:100 ~hits:0 ~misses:10 "serve_cold";
               serve_phase ~hits:10 ~misses:0 "serve_warm";
               serve_phase ~requests:20 ~completed:10 ~shed:10 "serve_burst";
             ]
           ())) "p50_ns";
  serve_rejects "missing serve phase"
    (fun _ ->
      Harness.Bench.to_json
        (doc ~matrix ~serve:[ serve_phase ~hits:0 ~misses:10 "serve_cold" ] ()))
    "missing phase";
  serve_rejects "negative count"
    (replace ~from:"\"shed\": 10" ~into:"\"shed\": -1")
    "shed"

(* A truncated baseline — the exact artifact a crashed writer without
   the atomic rename would leave — must be rejected, at any cut point. *)
let truncated_is_rejected () =
  let full = Harness.Bench.to_json (doc ~matrix ~serve:serve_phases ()) in
  List.iter
    (fun frac ->
      let cut = String.length full * frac / 100 in
      let truncated = String.sub full 0 cut in
      match Harness.Bench.validate_string truncated with
      | Ok _ ->
        Alcotest.fail
          (Printf.sprintf "truncation at %d%% (%d bytes) validated" frac cut)
      | Error _ -> ())
    [ 10; 50; 90; 99 ]

(* ------------------------------------------------------------------ *)
(* Perf-regression gate (mrvcc benchdiff / the CI perf gate)           *)
(* ------------------------------------------------------------------ *)

let gate ?(tolerance = 0.5) old_s new_s =
  Harness.Bench.compare_strings ~tolerance old_s new_s

let gate_passes_identical_baselines () =
  let j = Harness.Bench.to_json (doc ~matrix ~serve:serve_phases ()) in
  match gate j j with
  | Ok report ->
    check_bool "report shows per-phase table" true (contains report "sim_tls");
    check_bool "no regressions flagged" false (contains report "REGRESSION")
  | Error report -> Alcotest.fail ("identical baselines rejected: " ^ report)

let gate_tolerates_noise () =
  let old_j = Harness.Bench.to_json (doc ~matrix ()) in
  (* +40% on one wall is inside the +50% tolerance. *)
  let new_j =
    replace
      ~from:"\"phase\": \"sim_tls\", \"wall_ns\": 1000"
      ~into:"\"phase\": \"sim_tls\", \"wall_ns\": 1400" old_j
  in
  match gate old_j new_j with
  | Ok _ -> ()
  | Error report -> Alcotest.fail ("noise within tolerance rejected: " ^ report)

let gate_fails_on_injected_wall_regression () =
  let old_j = Harness.Bench.to_json (doc ~matrix ()) in
  let new_j =
    replace
      ~from:"\"phase\": \"sim_tls\", \"wall_ns\": 1000"
      ~into:"\"phase\": \"sim_tls\", \"wall_ns\": 9000" old_j
  in
  (match gate old_j new_j with
  | Ok report -> Alcotest.fail ("9x wall regression passed the gate: " ^ report)
  | Error report ->
    check_bool "regression named in report" true (contains report "REGRESSION");
    check_bool "offending phase named" true (contains report "sim_tls"));
  (* The ref-oracle and icode-off walls are gated too. *)
  let new_j =
    replace ~from:"\"icode_off_wall_ns\": 2000"
      ~into:"\"icode_off_wall_ns\": 20000" old_j
  in
  match gate old_j new_j with
  | Ok report ->
    Alcotest.fail ("icode-off wall regression passed the gate: " ^ report)
  | Error report ->
    check_bool "icode_off regression flagged" true
      (contains report "icode_off_wall")

let gate_fails_on_counter_drift () =
  let old_j = Harness.Bench.to_json (doc ~matrix ()) in
  (* Simulated cycle counts are deterministic: ANY drift fails, no
     tolerance applies. *)
  let new_j = replace ~from:"\"cycles\": 42" ~into:"\"cycles\": 43" old_j in
  (match gate new_j old_j with
  | Ok _ -> Alcotest.fail "cycle drift passed the gate"
  | Error report ->
    check_bool "counter drift named" true
      (contains report "deterministic counter changed"));
  let new_j = replace ~from:"\"commits\": 7" ~into:"\"commits\": 8" old_j in
  match gate old_j new_j with
  | Ok _ -> Alcotest.fail "commit drift passed the gate"
  | Error report ->
    check_bool "commit drift named" true (contains report "commits")

let gate_rejects_malformed_input () =
  let ok = Harness.Bench.to_json (doc ~matrix ()) in
  (match gate "{ nope" ok with
  | Ok _ -> Alcotest.fail "malformed old baseline accepted"
  | Error msg -> check_bool "parse error surfaced" true
      (contains msg "parse error"));
  match gate ok (String.sub ok 0 (String.length ok / 2)) with
  | Ok _ -> Alcotest.fail "truncated new baseline accepted"
  | Error _ -> ()

(* ------------------------------------------------------------------ *)
(* Atomic baseline writes                                              *)
(* ------------------------------------------------------------------ *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let with_temp_target f =
  let path = Filename.temp_file "bench_atomic" ".json" in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun p -> try Sys.remove p with Sys_error _ -> ())
        (path
        :: List.map
             (Filename.concat (Filename.dirname path))
             (Array.to_list (Sys.readdir (Filename.dirname path))
             |> List.filter (fun n ->
                    String.length n > String.length (Filename.basename path)
                    && String.sub n 0 (String.length (Filename.basename path))
                       = Filename.basename path))))
    (fun () -> f path)

let atomic_write_roundtrip () =
  with_temp_target (fun path ->
      Harness.Bench.write_file_atomic path "first\n";
      Alcotest.(check string) "first write lands" "first\n" (read_file path);
      Harness.Bench.write_file_atomic path "second\n";
      Alcotest.(check string) "overwrite replaces" "second\n" (read_file path);
      let dir = Filename.dirname path and base = Filename.basename path in
      let strays =
        Array.to_list (Sys.readdir dir)
        |> List.filter (fun n ->
               String.length n > String.length base
               && String.sub n 0 (String.length base) = base)
      in
      Alcotest.(check (list string)) "no temp files left" [] strays)

(* Kill a writer between the temp write and the rename: the reader must
   still see the complete old contents (never a truncated or partial
   file), which is the whole point of write-then-rename. *)
let atomic_write_survives_kill () =
  with_temp_target (fun path ->
      Harness.Bench.write_file_atomic path "old baseline\n";
      match Unix.fork () with
      | 0 ->
        (* Child: start the new write but block before the rename until
           SIGKILL arrives.  _exit, not exit: no at_exit/flush side
           effects in the forked runtime. *)
        (try
           Harness.Bench.write_file_atomic path
             ~before_rename:(fun () -> Unix.sleepf 30.0)
             "new baseline\n"
         with _ -> ());
        Unix._exit 0
      | pid ->
        let tmp = Printf.sprintf "%s.tmp.%d" path pid in
        (* Wait for the child to finish the temp write (it then blocks in
           before_rename), but never longer than ~5s. *)
        let deadline = Unix.gettimeofday () +. 5.0 in
        while
          (not (Sys.file_exists tmp)) && Unix.gettimeofday () < deadline
        do
          Unix.sleepf 0.01
        done;
        Alcotest.(check bool) "writer reached the temp file" true
          (Sys.file_exists tmp);
        Unix.kill pid Sys.sigkill;
        ignore (Unix.waitpid [] pid);
        Alcotest.(check string) "old contents survive a mid-write kill"
          "old baseline\n" (read_file path);
        (try Sys.remove tmp with Sys_error _ -> ()))

let () =
  Alcotest.run "bench-schema"
    [
      ( "schema",
        [
          Alcotest.test_case "emitter/validator roundtrip" `Quick
            roundtrip_validates;
          Alcotest.test_case "serve section roundtrip" `Quick
            serve_roundtrip_validates;
          Alcotest.test_case "violations rejected with field names" `Quick
            schema_violations_are_rejected;
          Alcotest.test_case "serve violations rejected" `Quick
            serve_violations_are_rejected;
          Alcotest.test_case "truncated document rejected" `Quick
            truncated_is_rejected;
        ] );
      ( "benchdiff",
        [
          Alcotest.test_case "identical baselines pass" `Quick
            gate_passes_identical_baselines;
          Alcotest.test_case "noise within tolerance passes" `Quick
            gate_tolerates_noise;
          Alcotest.test_case "injected wall regression fails" `Quick
            gate_fails_on_injected_wall_regression;
          Alcotest.test_case "deterministic counter drift fails" `Quick
            gate_fails_on_counter_drift;
          Alcotest.test_case "malformed input rejected" `Quick
            gate_rejects_malformed_input;
        ] );
      ( "atomic-write",
        [
          Alcotest.test_case "write and overwrite, no strays" `Quick
            atomic_write_roundtrip;
          Alcotest.test_case "kill mid-write keeps the old file" `Quick
            atomic_write_survives_kill;
        ] );
    ]
