(* The flat icode encoding (DESIGN §17) earns its unchecked array reads
   two ways, both exercised here:

   - a QCheck round-trip property over the Proggen corpus: every block
     of every compiled function must decode back to exactly the
     instruction list and terminator it was lowered from, and the
     integer binop evaluator must agree with the variant one on random
     operands (including the div/rem-zero and shift-mask edges);
   - negative-path tests on the verifier: doctored arrays with a
     dangling branch target, an out-of-range operand slot, or an
     opcode/arity mismatch must be rejected with a message naming the
     defect — [Icode.verify] is the license for the dispatcher's
     unchecked reads, so it has to actually catch these. *)

module I = Ir.Instr
module Icode = Tls.Icode

let check_bool = Alcotest.(check bool)

let compile_src src input =
  Tlscore.Pipeline.compile ~lint:false ~source:src ~profile_input:input
    ~memory_sync:
      (Tlscore.Pipeline.Profiled { dep_input = input; threshold = 0.05 })
    ()

(* ------------------------------------------------------------------ *)
(* Round-trip: encode then decode_block reproduces every block exactly *)
(* ------------------------------------------------------------------ *)

let roundtrip_code (code : Runtime.Code.t) =
  let p = Icode.of_code code in
  Array.for_all
    (fun (f : Icode.func) ->
      let cf = f.Icode.fn_cfunc in
      let ok = ref true in
      Array.iteri
        (fun b (blk : Runtime.Code.cblock) ->
          let instrs, term = Icode.decode_block p f b in
          if instrs <> Array.to_list blk.Runtime.Code.instrs then ok := false;
          if term <> blk.Runtime.Code.term then ok := false)
        cf.Runtime.Code.cf_blocks;
      !ok)
    p.Icode.funcs

let proggen_roundtrip =
  QCheck.Test.make ~count:100
    ~name:"proggen: icode decodes back to the exact instruction lists"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let source, input = Faults.Proggen.generate ~seed in
      let compiled = compile_src source input in
      roundtrip_code compiled.Tlscore.Pipeline.code)

let binops =
  [ I.Add; I.Sub; I.Mul; I.Div; I.Rem; I.Band; I.Bor; I.Bxor; I.Shl;
    I.Shr; I.Eq; I.Ne; I.Lt; I.Le; I.Gt; I.Ge ]

let eval_binop_i_agrees =
  QCheck.Test.make ~count:2000
    ~name:"eval_binop_i agrees with the variant evaluator"
    QCheck.(triple (int_bound 15) int int)
    (fun (opi, a, b) ->
      let op = List.nth binops opi in
      Icode.eval_binop_i (Icode.binop_index op) a b = I.eval_binop op a b)

let eval_binop_i_edges () =
  (* The cases a uniform operand draw is unlikely to land on. *)
  List.iter
    (fun (op, a, b) ->
      Alcotest.(check int)
        "edge case"
        (I.eval_binop op a b)
        (Icode.eval_binop_i (Icode.binop_index op) a b))
    [
      (I.Div, 17, 0); (I.Rem, 17, 0); (I.Div, min_int, -1);
      (I.Shl, 1, 63); (I.Shl, 1, 64); (I.Shr, min_int, 65);
      (I.Shl, -1, 130); (I.Shr, -8, 2);
    ]

(* ------------------------------------------------------------------ *)
(* Verifier negative paths on doctored arrays                          *)
(* ------------------------------------------------------------------ *)

(* A fixed program with everything the doctoring needs at predictable
   spots: a call with arguments, a loop branch, binops on registers. *)
let victim_src =
  "int g;\n\
   int work(int x, int y) { return x * y + g; }\n\
   void main() {\n\
  \  int i; int v;\n\
  \  for (i = 0; i < 8; i = i + 1) { v = work(v, i + 1); g = v; }\n\
  \  print(v);\n\
   }"

let victim_prog () =
  let compiled = compile_src victim_src [||] in
  Icode.encode compiled.Tlscore.Pipeline.code

(* Widths mirror the layout table in icode.mli — kept in the test on
   purpose, so an encoder width change that forgets the docs fails
   loudly here. *)
let width_of_kind : I.kind -> int = function
  | I.Bin _ | I.Sync_load _ -> 5
  | I.Mov _ | I.Load _ | I.Store _ | I.Input _ | I.Wait_scalar _
  | I.Signal_scalar _ | I.Signal_mem _ | I.Signal_mem_if_unsent _ ->
    4
  | I.Call (_, _, args) -> 5 + (2 * List.length args)
  | I.Print _ | I.Input_len _ | I.Wait_mem _ | I.Signal_null _
  | I.Signal_null_if_unsent _ ->
    3

(* (flat offset, instruction) pairs of block [b], plus the offset of
   its terminator. *)
let instr_offsets (p : Icode.prog) (f : Icode.func) b =
  let instrs, _ = Icode.decode_block p f b in
  let pc = ref f.Icode.block_off.(b) in
  let offs =
    List.map
      (fun (i : I.t) ->
        let at = !pc in
        pc := !pc + width_of_kind i.I.kind;
        (at, i))
      instrs
  in
  (offs, !pc)

(* Find the first (func, block, offset, instr) satisfying [pred]. *)
let find_instr (p : Icode.prog) pred =
  let found = ref None in
  Array.iter
    (fun (f : Icode.func) ->
      Array.iteri
        (fun b _ ->
          if !found = None then
            let offs, _ = instr_offsets p f b in
            List.iter
              (fun (at, i) ->
                if !found = None && pred i then found := Some (f, b, at, i))
              offs)
        f.Icode.fn_cfunc.Runtime.Code.cf_blocks)
    p.Icode.funcs;
  match !found with
  | Some x -> x
  | None -> Alcotest.fail "victim program lacks the expected instruction"

let expect_error label (p : Icode.prog) fragment =
  match Icode.verify p with
  | Ok () -> Alcotest.fail (label ^ ": verifier accepted malformed icode")
  | Error msg ->
    let contains hay needle =
      let nh = String.length hay and nn = String.length needle in
      let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
      at 0
    in
    check_bool
      (Printf.sprintf "%s: message %S mentions %S" label msg fragment)
      true (contains msg fragment)

let verifier_accepts_encoder_output () =
  match Icode.verify (victim_prog ()) with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("fresh encoding rejected: " ^ e)

let dangling_branch_target () =
  let p = victim_prog () in
  (* Terminator of some multi-block function: take main's block 0.  Its
     terminator starts where the instructions end. *)
  let f =
    match
      Array.to_list p.Icode.funcs
      |> List.find_opt (fun (f : Icode.func) ->
             Array.length f.Icode.fn_cfunc.Runtime.Code.cf_blocks > 1)
    with
    | Some f -> f
    | None -> Alcotest.fail "victim program has no multi-block function"
  in
  let rec find_jump b =
    if b >= Array.length f.Icode.fn_cfunc.Runtime.Code.cf_blocks then
      Alcotest.fail "no jmp/br terminator found"
    else
      let _, term_at = instr_offsets p f b in
      match f.Icode.fn_cfunc.Runtime.Code.cf_blocks.(b).Runtime.Code.term with
      | I.Jmp _ -> (term_at + 1)          (* label slot of Jmp *)
      | I.Br _ -> (term_at + 2)           (* then-label slot of Br *)
      | I.Ret _ -> find_jump (b + 1)
  in
  let slot = find_jump 0 in
  f.Icode.code.(slot) <- 1000;
  expect_error "dangling branch" p "dangling branch target"

let branch_offset_mismatch () =
  let p = victim_prog () in
  let f =
    match
      Array.to_list p.Icode.funcs
      |> List.find_opt (fun (f : Icode.func) ->
             Array.length f.Icode.fn_cfunc.Runtime.Code.cf_blocks > 1)
    with
    | Some f -> f
    | None -> Alcotest.fail "victim program has no multi-block function"
  in
  let rec find_jmp_off b =
    if b >= Array.length f.Icode.fn_cfunc.Runtime.Code.cf_blocks then
      Alcotest.fail "no jmp/br terminator found"
    else
      let _, term_at = instr_offsets p f b in
      match f.Icode.fn_cfunc.Runtime.Code.cf_blocks.(b).Runtime.Code.term with
      | I.Jmp _ -> (term_at + 2)          (* pre-resolved offset slot *)
      | I.Br _ -> (term_at + 4)           (* then-offset slot *)
      | I.Ret _ -> find_jmp_off (b + 1)
  in
  let slot = find_jmp_off 0 in
  f.Icode.code.(slot) <- f.Icode.code.(slot) + 1;
  expect_error "stale branch offset" p "does not match block"

let out_of_range_operand () =
  let p = victim_prog () in
  let f, _, at, _ =
    find_instr p (fun i ->
        match i.I.kind with I.Bin _ -> true | _ -> false)
  in
  (* Destination register slot of a binop is at +2. *)
  f.Icode.code.(at + 2) <- f.Icode.fn_cfunc.Runtime.Code.cf_nregs + 5;
  expect_error "operand slot" p "out-of-range register"

let invalid_opcode () =
  let p = victim_prog () in
  let f, _, at, _ =
    find_instr p (fun i ->
        match i.I.kind with I.Bin _ -> true | _ -> false)
  in
  f.Icode.code.(at) <- 200;
  expect_error "invalid opcode" p "invalid opcode"

let call_arity_mismatch () =
  let p = victim_prog () in
  let f, _, at, _ =
    find_instr p (fun i ->
        match i.I.kind with I.Call _ -> true | _ -> false)
  in
  (* The argument-count slot of a call is at +4; inflating it makes the
     decoded width overrun the block. *)
  f.Icode.code.(at + 4) <- 4096;
  expect_error "call arity" p "overruns block end"

let opcode_width_mismatch () =
  let p = victim_prog () in
  let f, _, at, _ =
    find_instr p (fun i ->
        match i.I.kind with I.Bin _ -> true | _ -> false)
  in
  (* Rewrite a 5-slot binop into a 2-slot Ret: a terminator that does
     not end its block. *)
  f.Icode.code.(at) <- 33 (* op_ret *);
  expect_error "mid-block terminator" p "terminator does not end the block"

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "icode"
    [
      ( "roundtrip",
        [
          QCheck_alcotest.to_alcotest proggen_roundtrip;
          QCheck_alcotest.to_alcotest eval_binop_i_agrees;
          Alcotest.test_case "eval_binop_i edge cases" `Quick
            eval_binop_i_edges;
        ] );
      ( "verifier",
        [
          Alcotest.test_case "accepts fresh encoder output" `Quick
            verifier_accepts_encoder_output;
          Alcotest.test_case "dangling branch target" `Quick
            dangling_branch_target;
          Alcotest.test_case "stale branch offset" `Quick
            branch_offset_mismatch;
          Alcotest.test_case "out-of-range operand slot" `Quick
            out_of_range_operand;
          Alcotest.test_case "invalid opcode" `Quick invalid_opcode;
          Alcotest.test_case "call arity overruns block" `Quick
            call_arity_mismatch;
          Alcotest.test_case "terminator mid-block" `Quick
            opcode_width_mismatch;
        ] );
    ]
