(* Runtime tests: memory, code snapshots, and the thread stepper
   (events, hooks, sequential sync semantics). *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Memory                                                              *)
(* ------------------------------------------------------------------ *)

let memory_basics () =
  let m = Runtime.Memory.create () in
  check_int "default zero" 0 (Runtime.Memory.load m 123);
  Runtime.Memory.store m 10 7;
  Runtime.Memory.store m (-5) 9;
  check_int "written" 7 (Runtime.Memory.load m 10);
  check_int "negative addr" 9 (Runtime.Memory.load m (-5));
  Runtime.Memory.store m 10 0;
  check_int "zero remove" 0 (Runtime.Memory.load m 10);
  check_int "footprint" 1 (Runtime.Memory.footprint m)

let memory_copy_equal () =
  let m = Runtime.Memory.create () in
  Runtime.Memory.store_all m [ (1, 2); (3, 4) ];
  let c = Runtime.Memory.copy m in
  check_bool "equal" true (Runtime.Memory.equal m c);
  Runtime.Memory.store c 1 99;
  check_bool "independent" false (Runtime.Memory.equal m c);
  check_int "original intact" 2 (Runtime.Memory.load m 1)

(* ------------------------------------------------------------------ *)
(* Code snapshots                                                      *)
(* ------------------------------------------------------------------ *)

let code_snapshot () =
  let prog =
    Ir.Lower.compile_source
      "int g = 3; int f(int a, int b) { return a + b; } void main() { g = \
       f(g, 2); }"
  in
  let code = Runtime.Code.of_prog prog in
  let f = Runtime.Code.func code "f" in
  check_int "params" 2 (List.length f.Runtime.Code.cf_params);
  check_bool "init stores" true
    (List.mem (Ir.Layout.globals_base, 3) code.Runtime.Code.initial_stores);
  check_bool "unknown fn" true
    (match Runtime.Code.func code "nope" with
    | exception Not_found -> true
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* Thread stepping                                                     *)
(* ------------------------------------------------------------------ *)

let compile src = Runtime.Code.of_prog (Ir.Lower.compile_source src)

let run_seq ?(input = [||]) src =
  let code = compile src in
  let mem = Runtime.Memory.create () in
  (Runtime.Thread.run_sequential code ~input mem, mem)

let thread_output_order () =
  let out, _ = run_seq "void main() { print(1); print(2); print(3); }" in
  Alcotest.(check (list int)) "ordered" [ 1; 2; 3 ] out

let thread_final_memory () =
  let _, mem =
    run_seq "int a; int b; void main() { a = 5; b = a * 2; }"
  in
  let base = Ir.Layout.globals_base in
  check_int "a" 5 (Runtime.Memory.load mem base);
  check_int "b" 10 (Runtime.Memory.load mem (base + 1))

let thread_events () =
  (* Step manually and record the event stream skeleton. *)
  let code = compile "int f() { return 4; } void main() { print(f()); }" in
  let t = Runtime.Thread.create code ~func_name:"main" ~input:[||] in
  let mem = Runtime.Memory.create () in
  let hooks = Runtime.Thread.sequential_hooks mem in
  let events = ref [] in
  let rec loop () =
    match Runtime.Thread.step t hooks with
    | Runtime.Thread.Ran ev ->
      (match ev with
      | Runtime.Thread.Exec { Ir.Instr.kind = Ir.Instr.Call _; _ } ->
        events := `Call :: !events
      | Runtime.Thread.Return _ -> events := `Ret :: !events
      | Runtime.Thread.Goto _ -> events := `Goto :: !events
      | Runtime.Thread.Exec _ -> events := `Instr :: !events);
      loop ()
    | Runtime.Thread.Finished _ -> ()
    | Runtime.Thread.Blocked | Runtime.Thread.Suspended ->
      Alcotest.fail "unexpected blocking"
  in
  loop ();
  let evs = List.rev !events in
  check_bool "one call, one ret" true
    (List.length (List.filter (( = ) `Call) evs) = 1
    && List.length (List.filter (( = ) `Ret) evs) = 1);
  check_int "depth restored" 0 (List.length t.Runtime.Thread.frames)

let thread_control_suspend () =
  (* A control hook that refuses every back edge: the thread parks at the
     terminator without state change. *)
  let code = compile "void main() { int i; i = 0; while (i < 3) { i = i + 1; } print(i); }" in
  let t = Runtime.Thread.create code ~func_name:"main" ~input:[||] in
  let mem = Runtime.Memory.create () in
  let base = Runtime.Thread.sequential_hooks mem in
  let refuse = ref false in
  let hooks =
    { base with Runtime.Thread.control = (fun _ ~target:_ -> not !refuse) }
  in
  (* Run a few steps, then refuse: step must return Suspended forever
     without advancing. *)
  for _ = 1 to 5 do
    ignore (Runtime.Thread.step t hooks)
  done;
  refuse := true;
  let rec until_suspended n =
    if n = 0 then Alcotest.fail "never suspended"
    else
      match Runtime.Thread.step t hooks with
      | Runtime.Thread.Suspended -> ()
      | _ -> until_suspended (n - 1)
  in
  until_suspended 100;
  let icount = t.Runtime.Thread.icount in
  check_bool "suspend again" true (Runtime.Thread.step t hooks = Runtime.Thread.Suspended);
  check_int "no progress" icount t.Runtime.Thread.icount

let thread_wait_blocks () =
  (* A Wait_scalar with a hook returning None blocks without advancing;
     with Some v it writes the register and proceeds. *)
  let f = Ir.Func.create "main" [] in
  let entry = Ir.Func.add_block f in
  let b = Ir.Func.block f entry in
  b.Ir.Func.instrs <-
    [
      { Ir.Instr.iid = 1; kind = Ir.Instr.Wait_scalar (0, 0) };
      { Ir.Instr.iid = 2; kind = Ir.Instr.Print (Ir.Instr.Reg 0) };
    ];
  b.Ir.Func.term <- Ir.Instr.Ret None;
  f.Ir.Func.nregs <- 1;
  let layout = Ir.Layout.build (Lang.Sema.check_source "void main() {}") in
  let prog = Ir.Prog.create layout in
  Ir.Prog.add_func prog f;
  let code = Runtime.Code.of_prog prog in
  let t = Runtime.Thread.create code ~func_name:"main" ~input:[||] in
  let mem = Runtime.Memory.create () in
  let base = Runtime.Thread.sequential_hooks mem in
  let ready = ref None in
  let hooks = { base with Runtime.Thread.wait_scalar = (fun _ _ _ -> !ready) } in
  check_bool "blocked" true (Runtime.Thread.step t hooks = Runtime.Thread.Blocked);
  check_bool "still blocked" true (Runtime.Thread.step t hooks = Runtime.Thread.Blocked);
  ready := Some 42;
  (match Runtime.Thread.step t hooks with
  | Runtime.Thread.Ran (Runtime.Thread.Exec _) -> ()
  | _ -> Alcotest.fail "expected to run");
  ignore (Runtime.Thread.step t hooks);
  Alcotest.(check (list int)) "printed waited value" [ 42 ] (Runtime.Thread.output t)

let thread_sync_noops_sequential () =
  (* Hand-inserted sync instructions are no-ops under sequential hooks:
     Wait_scalar keeps the current register, Sync_load degrades to a plain
     load, signals do nothing. *)
  let f = Ir.Func.create "main" [] in
  let entry = Ir.Func.add_block f in
  let b = Ir.Func.block f entry in
  let addr = Ir.Instr.Imm 500 in
  b.Ir.Func.instrs <-
    [
      { Ir.Instr.iid = 1; kind = Ir.Instr.Mov (0, Ir.Instr.Imm 5) };
      { Ir.Instr.iid = 2; kind = Ir.Instr.Store (addr, Ir.Instr.Imm 77) };
      { Ir.Instr.iid = 3; kind = Ir.Instr.Wait_scalar (0, 0) };
      { Ir.Instr.iid = 4; kind = Ir.Instr.Wait_mem 1 };
      { Ir.Instr.iid = 5; kind = Ir.Instr.Sync_load (1, 1, addr) };
      { Ir.Instr.iid = 6; kind = Ir.Instr.Signal_mem (1, addr) };
      { Ir.Instr.iid = 7; kind = Ir.Instr.Signal_null_if_unsent 1 };
      { Ir.Instr.iid = 8; kind = Ir.Instr.Print (Ir.Instr.Reg 0) };
      { Ir.Instr.iid = 9; kind = Ir.Instr.Print (Ir.Instr.Reg 1) };
    ];
  b.Ir.Func.term <- Ir.Instr.Ret None;
  f.Ir.Func.nregs <- 2;
  let layout = Ir.Layout.build (Lang.Sema.check_source "void main() {}") in
  let prog = Ir.Prog.create layout in
  Ir.Prog.add_func prog f;
  let code = Runtime.Code.of_prog prog in
  let mem = Runtime.Memory.create () in
  let out = Runtime.Thread.run_sequential code ~input:[||] mem in
  Alcotest.(check (list int)) "waited reg kept, sync load real" [ 5; 77 ] out

let thread_step_budget () =
  let code = compile "void main() { while (1) { } }" in
  let mem = Runtime.Memory.create () in
  match Runtime.Thread.run_sequential ~max_steps:10_000 code ~input:[||] mem with
  | exception Runtime.Thread.Step_limit { max_steps; icount } ->
    Alcotest.(check int) "budget carried" 10_000 max_steps;
    Alcotest.(check bool) "icount past budget" true (icount > max_steps)
  | _ -> Alcotest.fail "expected Step_limit"

let copy_frame_independent () =
  let code = compile "void main() { int x; x = 0; print(x); }" in
  let t = Runtime.Thread.create code ~func_name:"main" ~input:[||] in
  let f = Runtime.Thread.current_frame t in
  let c = Runtime.Thread.copy_frame f in
  c.Runtime.Thread.regs.(0) <- 99;
  check_int "original register unchanged" 0 f.Runtime.Thread.regs.(0);
  c.Runtime.Thread.block <- 0;
  c.Runtime.Thread.pc <- 1;
  check_int "original pc unchanged" 0 f.Runtime.Thread.pc

let () =
  Alcotest.run "runtime"
    [
      ( "memory",
        [
          Alcotest.test_case "basics" `Quick memory_basics;
          Alcotest.test_case "copy/equal" `Quick memory_copy_equal;
        ] );
      ("code", [ Alcotest.test_case "snapshot" `Quick code_snapshot ]);
      ( "thread",
        [
          Alcotest.test_case "output order" `Quick thread_output_order;
          Alcotest.test_case "final memory" `Quick thread_final_memory;
          Alcotest.test_case "events" `Quick thread_events;
          Alcotest.test_case "control suspend" `Quick thread_control_suspend;
          Alcotest.test_case "wait blocks" `Quick thread_wait_blocks;
          Alcotest.test_case "sync no-ops" `Quick thread_sync_noops_sequential;
          Alcotest.test_case "step budget" `Quick thread_step_budget;
          Alcotest.test_case "copy frame" `Quick copy_frame_independent;
        ] );
    ]
