(* Validate a bench JSON document against the Harness.Bench schema and
   print the structural summary (names and phases, never timing values),
   so an expect test over the output stays stable across regenerations. *)

let () =
  if Array.length Sys.argv < 2 then begin
    prerr_endline "usage: validate FILE.json";
    exit 2
  end;
  match Harness.Bench.validate_file Sys.argv.(1) with
  | Ok summary -> print_string summary
  | Error msg ->
    Printf.eprintf "schema violation: %s\n" msg;
    exit 1
