(* The compile service (DESIGN §14): the content-addressed cache must
   survive crashes and corruption without ever serving bad bytes, and
   the service layer must turn every failure mode into a typed response
   — shed, deadline, degraded — never a hang or an untyped crash.

   The centerpiece is the kill-mid-cache-write test: a writer SIGKILLed
   between the temp write and the rename must leave the cache either
   empty or whole, a restart must sweep the debris, and the warm rerun
   that follows must be byte-identical to one that was never
   interrupted. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let with_temp_dir f =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "mrvcc-serve-test.%d.%d" (Unix.getpid ())
         (Random.int 1_000_000))
  in
  Serve.Cache.remove_tree dir;
  Fun.protect ~finally:(fun () -> Serve.Cache.remove_tree dir) (fun () -> f dir)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

(* ------------------------------------------------------------------ *)
(* Cache                                                               *)
(* ------------------------------------------------------------------ *)

let cache_roundtrip () =
  with_temp_dir (fun dir ->
      let c, quarantined = Serve.Cache.open_dir ~dir in
      check_int "fresh cache has nothing to quarantine" 0
        (List.length quarantined);
      let key = Serve.Cache.fingerprint [ "op=simulate"; "src=..." ] in
      check_bool "miss before store" true (Serve.Cache.find c ~key = None);
      Serve.Cache.store c ~key "payload bytes";
      check_string "hit after store" "payload bytes"
        (Option.get (Serve.Cache.find c ~key));
      Serve.Cache.store c ~key "payload bytes v2";
      check_string "store overwrites" "payload bytes v2"
        (Option.get (Serve.Cache.find c ~key));
      let st = Serve.Cache.stats c in
      check_int "two hits" 2 st.Serve.Cache.cs_hits;
      check_int "one miss" 1 st.Serve.Cache.cs_misses;
      check_int "two stores" 2 st.Serve.Cache.cs_stores;
      check_int "nothing quarantined" 0 st.Serve.Cache.cs_quarantined)

let fingerprint_is_boundary_safe () =
  check_bool "length-prefixing keeps part boundaries" true
    (Serve.Cache.fingerprint [ "ab"; "c" ]
    <> Serve.Cache.fingerprint [ "a"; "bc" ])

let corrupt_entry_quarantined_on_read () =
  with_temp_dir (fun dir ->
      let c, _ = Serve.Cache.open_dir ~dir in
      let key = Serve.Cache.fingerprint [ "k" ] in
      Serve.Cache.store c ~key "good payload";
      (* Flip one payload byte behind the cache's back. *)
      let path = Serve.Cache.entry_path c ~key in
      let bytes = Bytes.of_string (read_file path) in
      let last = Bytes.length bytes - 1 in
      Bytes.set bytes last (Char.chr (Char.code (Bytes.get bytes last) lxor 1));
      write_file path (Bytes.to_string bytes);
      check_bool "corrupt entry reads as a miss" true
        (Serve.Cache.find c ~key = None);
      check_int "and is counted quarantined" 1
        (Serve.Cache.stats c).Serve.Cache.cs_quarantined;
      check_bool "the poisoned bytes are kept for post-mortem" true
        (Sys.file_exists
           (Filename.concat (Filename.concat dir "quarantine")
              (Filename.basename path)));
      check_bool "the entry itself is gone" true (not (Sys.file_exists path)))

let startup_validation_quarantines () =
  with_temp_dir (fun dir ->
      let c, _ = Serve.Cache.open_dir ~dir in
      let good = Serve.Cache.fingerprint [ "good" ] in
      Serve.Cache.store c ~key:good "intact";
      (* A truncated entry and a stray temp file, as a crashed writer
         would leave them. *)
      write_file (Filename.concat dir "deadbeef.entry") "mrvcc-cache 1 tru";
      write_file (Filename.concat dir "tmp.999.deadbeef") "partial";
      let c2, quarantined = Serve.Cache.open_dir ~dir in
      Alcotest.(check (list string))
        "startup names the corrupt entry" [ "deadbeef.entry" ] quarantined;
      check_bool "stray temp swept" true
        (not (Sys.file_exists (Filename.concat dir "tmp.999.deadbeef")));
      check_string "intact entry still served" "intact"
        (Option.get (Serve.Cache.find c2 ~key:good)))

(* SIGKILL a writer between the temp write and the rename.  The store
   must be invisible (old state intact), the restart must sweep the
   temp file, and a subsequent store must produce bytes identical to a
   never-interrupted store. *)
let kill_mid_write_is_invisible () =
  with_temp_dir (fun dir ->
      let key = Serve.Cache.fingerprint [ "victim" ] in
      (* Reference bytes from an uninterrupted store in a sibling dir. *)
      let reference =
        let rdir = Filename.concat dir "reference" in
        let rc, _ = Serve.Cache.open_dir ~dir:rdir in
        Serve.Cache.store rc ~key "the artifact";
        read_file (Serve.Cache.entry_path rc ~key)
      in
      let vdir = Filename.concat dir "victim" in
      let c, _ = Serve.Cache.open_dir ~dir:vdir in
      (match Unix.fork () with
      | 0 ->
        (* Child: write the temp file, then block until SIGKILL. *)
        (try
           Serve.Cache.store c ~key
             ~before_rename:(fun () -> Unix.sleepf 30.0)
             "the artifact"
         with _ -> ());
        Unix._exit 0
      | pid ->
        let tmp =
          Filename.concat vdir (Printf.sprintf "tmp.%d.%s" pid key)
        in
        let deadline = Unix.gettimeofday () +. 5.0 in
        while (not (Sys.file_exists tmp)) && Unix.gettimeofday () < deadline do
          Unix.sleepf 0.01
        done;
        check_bool "writer reached the temp file" true (Sys.file_exists tmp);
        Unix.kill pid Sys.sigkill;
        ignore (Unix.waitpid [] pid));
      (* Restart: the half-written store must be invisible and swept. *)
      let c2, quarantined = Serve.Cache.open_dir ~dir:vdir in
      check_int "nothing to quarantine (temp never became an entry)" 0
        (List.length quarantined);
      check_bool "no stray temp files survive the restart" true
        (Array.for_all
           (fun n -> not (String.length n >= 4 && String.sub n 0 4 = "tmp."))
           (Sys.readdir vdir));
      check_bool "the interrupted store is a miss" true
        (Serve.Cache.find c2 ~key = None);
      (* The recomputed store is byte-identical to the uninterrupted
         one: the crash left no residue in the artifact itself. *)
      Serve.Cache.store c2 ~key "the artifact";
      check_string "recovered entry is byte-identical" reference
        (read_file (Serve.Cache.entry_path c2 ~key)))

(* ------------------------------------------------------------------ *)
(* Service                                                             *)
(* ------------------------------------------------------------------ *)

(* A program small enough that a full compile+simulate round is cheap,
   but with a real parallelisable loop so the pipeline has work to do. *)
let tiny_source =
  "int a[64];\n\
   void main() {\n\
  \  int i; int s; s = 0;\n\
  \  for (i = 0; i < 40; i = i + 1) { a[i % 64] = a[i % 64] + i; s = s + i; }\n\
  \  print(s);\n\
   }"

let request ?(id = 1) ?tick ?deadline_s ?fault () =
  {
    Serve.Request.rq_id = id;
    rq_op = Serve.Request.Simulate;
    rq_bench = None;
    rq_source = Some tiny_source;
    rq_input = None;
    rq_mode = "C";
    rq_threshold = 0.05;
    rq_sync_sched = false;
    rq_tick = tick;
    rq_deadline_s = deadline_s;
    rq_fault = fault;
  }

let config dir =
  {
    Serve.Service.default_config with
    Serve.Service.sc_cache_dir = Some dir;
    sc_jobs = 1;
    sc_timing = false;  (* byte-identical response lines *)
  }

let run cfg reqs = Serve.Service.run ~sleep:(fun _ -> ()) cfg reqs

let lines outcome =
  List.map Serve.Request.response_line outcome.Serve.Service.so_responses

let overload_sheds_typed () =
  with_temp_dir (fun dir ->
      let cfg = { (config dir) with sc_queue = 1; sc_rate = 1 } in
      let reqs =
        List.map (fun id -> request ~id ~tick:0 ()) [ 1; 2; 3 ]
      in
      let o = run cfg reqs in
      let st = o.Serve.Service.so_stats in
      check_int "queue of 1 admits 1 of 3" 2 st.Serve.Service.st_shed;
      check_int "the admitted one completes" 1 st.Serve.Service.st_ok;
      check_int "shed maps to exit 8" 8 (Serve.Service.exit_code st);
      List.iter
        (fun r ->
          match r.Serve.Request.rs_payload with
          | Serve.Request.Failure { err_class; _ } ->
            check_string "shed responses are typed" "shed" err_class;
            check_int "shed responses record zero attempts" 0
              r.Serve.Request.rs_attempts
          | Serve.Request.Result _ -> Alcotest.fail "shed carried a result")
        (List.filter
           (fun r -> r.Serve.Request.rs_status = Serve.Request.Sshed)
           o.Serve.Service.so_responses))

let slow_job_hits_deadline () =
  with_temp_dir (fun dir ->
      let cfg = { (config dir) with sc_retries = 0 } in
      let o =
        run cfg [ request ~deadline_s:0.05 ~fault:"slow-job" () ]
      in
      let st = o.Serve.Service.so_stats in
      check_int "deadline response" 1 st.Serve.Service.st_deadline;
      check_int "deadline maps to exit 9" 9 (Serve.Service.exit_code st);
      match (List.hd o.Serve.Service.so_responses).Serve.Request.rs_payload with
      | Serve.Request.Failure { err_class; _ } ->
        check_string "typed as deadline" "deadline" err_class
      | Serve.Request.Result _ -> Alcotest.fail "deadline carried a result")

let transient_fault_absorbed_by_retry () =
  with_temp_dir (fun dir ->
      let o = run (config dir) [ request ~fault:"transient-io" () ] in
      let r = List.hd o.Serve.Service.so_responses in
      check_bool "retry absorbs the transient" true
        (r.Serve.Request.rs_status = Serve.Request.Sok);
      check_int "exactly two attempts" 2 r.Serve.Request.rs_attempts;
      check_bool "faulted artifacts are never cached" true
        (r.Serve.Request.rs_cache = Serve.Request.Cnone))

let persistent_fault_degrades_to_lkg () =
  with_temp_dir (fun dir ->
      let cfg = config dir in
      (* Prime: a healthy run stores the last-known-good artifact. *)
      let healthy = run cfg [ request () ] in
      let healthy_r = List.hd healthy.Serve.Service.so_responses in
      check_bool "healthy run computed" true
        (healthy_r.Serve.Request.rs_cache = Serve.Request.Cmiss);
      (* Every attempt faults: the service must serve the LKG artifact,
         marked degraded/stale — not error, and not fresh. *)
      let o = run cfg [ request ~fault:"stale-degrade" () ] in
      let r = List.hd o.Serve.Service.so_responses in
      check_bool "status degraded" true
        (r.Serve.Request.rs_status = Serve.Request.Sdegraded);
      check_bool "cache disposition stale" true
        (r.Serve.Request.rs_cache = Serve.Request.Cstale);
      (match (healthy_r.Serve.Request.rs_payload, r.Serve.Request.rs_payload) with
      | Serve.Request.Result a, Serve.Request.Result b ->
        check_string "LKG payload is the healthy artifact"
          (Harness.Json.to_string a) (Harness.Json.to_string b)
      | _ -> Alcotest.fail "expected results on both sides");
      check_int "degraded is still exit 0" 0
        (Serve.Service.exit_code o.Serve.Service.so_stats))

let without_lkg_fault_is_typed_error () =
  with_temp_dir (fun dir ->
      (* Cold cache: nothing to degrade to, so the persistent transient
         must surface as a typed error (exit 1), never a hang. *)
      let o = run (config dir) [ request ~fault:"stale-degrade" () ] in
      let r = List.hd o.Serve.Service.so_responses in
      check_bool "status error" true
        (r.Serve.Request.rs_status = Serve.Request.Serror);
      (match r.Serve.Request.rs_payload with
      | Serve.Request.Failure { err_class; _ } ->
        check_string "typed transient" "transient" err_class
      | Serve.Request.Result _ -> Alcotest.fail "expected a failure payload");
      check_int "error maps to exit 1" 1
        (Serve.Service.exit_code o.Serve.Service.so_stats))

(* The service-level acceptance test: kill a cache write mid-flight,
   restart, and demand the warm rerun is byte-identical to one whose
   cache was never interrupted.

   ORDERING CONSTRAINT: this test must run before any other test that
   calls [Service.run].  [Unix.fork] is forbidden for the rest of the
   process once any domain has ever been spawned, and the service's
   deadline machinery spawns domains — so the writer is forked and
   killed here first, and every service run happens after. *)
let service_recovers_from_killed_cache_write () =
  with_temp_dir (fun dir ->
      (* Distinct thresholds give the two requests distinct cache keys;
         identical requests would collapse to one entry. *)
      let reqs =
        [
          request ~id:1 ();
          { (request ~id:2 ()) with Serve.Request.rq_threshold = 0.10 };
        ]
      in
      (* Victim first: a writer dies between temp write and rename,
         before anything below spawns a domain. *)
      let vdir = Filename.concat dir "victim" in
      let c, _ = Serve.Cache.open_dir ~dir:vdir in
      let r1 = request ~id:1 () in
      let source, input =
        match Serve.Service.resolve r1 with
        | Ok si -> si
        | Error e -> Alcotest.fail e
      in
      let key = Serve.Service.exact_key r1 ~source ~input in
      (match Unix.fork () with
      | 0 ->
        (try
           Serve.Cache.store c ~key
             ~before_rename:(fun () -> Unix.sleepf 30.0)
             "never completed"
         with _ -> ());
        Unix._exit 0
      | pid ->
        let tmp = Filename.concat vdir (Printf.sprintf "tmp.%d.%s" pid key) in
        let deadline = Unix.gettimeofday () +. 5.0 in
        while (not (Sys.file_exists tmp)) && Unix.gettimeofday () < deadline do
          Unix.sleepf 0.01
        done;
        check_bool "writer reached the temp file" true (Sys.file_exists tmp);
        Unix.kill pid Sys.sigkill;
        ignore (Unix.waitpid [] pid));
      (* Reference: cold then warm against a never-interrupted cache. *)
      let ref_dir = Filename.concat dir "reference" in
      ignore (run (config ref_dir) reqs);
      let reference_warm = lines (run (config ref_dir) reqs) in
      (* Cold run on the victim cache: the interrupted store must be
         invisible — a plain miss, recomputed and re-stored. *)
      let cold = run (config vdir) reqs in
      check_int "no quarantine needed (temp never became an entry)" 0
        (List.length cold.Serve.Service.so_stats.Serve.Service.st_quarantined);
      check_int "both requests recomputed" 2
        cold.Serve.Service.so_stats.Serve.Service.st_cache_misses;
      (* Warm rerun: byte-identical responses to the reference cache. *)
      let warm = run (config vdir) reqs in
      check_int "warm rerun is all hits" 2
        warm.Serve.Service.so_stats.Serve.Service.st_cache_hits;
      Alcotest.(check (list string))
        "warm rerun byte-identical to the uninterrupted cache"
        reference_warm (lines warm))

(* Same demand for detected corruption: a flipped byte in a committed
   entry must be quarantined at startup, recomputed, and the warm rerun
   again byte-identical. *)
let service_recovers_from_corrupt_entry () =
  with_temp_dir (fun dir ->
      let reqs = [ request ~id:1 () ] in
      let cfg = config dir in
      ignore (run cfg reqs);
      let warm_before = lines (run cfg reqs) in
      (* Corrupt the committed entry on disk. *)
      let r1 = request ~id:1 () in
      let source, input =
        match Serve.Service.resolve r1 with
        | Ok si -> si
        | Error e -> Alcotest.fail e
      in
      let key = Serve.Service.exact_key r1 ~source ~input in
      let c, _ = Serve.Cache.open_dir ~dir in
      let path = Serve.Cache.entry_path c ~key in
      let bytes = Bytes.of_string (read_file path) in
      let last = Bytes.length bytes - 1 in
      Bytes.set bytes last (Char.chr (Char.code (Bytes.get bytes last) lxor 1));
      write_file path (Bytes.to_string bytes);
      (* The next service run must detect it at startup, quarantine it,
         and recompute — then serve warm, byte-identical again. *)
      let recompute = run cfg reqs in
      check_int "startup quarantined the corrupt entry" 1
        (List.length
           recompute.Serve.Service.so_stats.Serve.Service.st_quarantined);
      check_int "request recomputed after the quarantine" 1
        recompute.Serve.Service.so_stats.Serve.Service.st_cache_misses;
      Alcotest.(check (list string))
        "warm rerun byte-identical after recovery" warm_before
        (lines (run cfg reqs)))

let bad_request_is_typed () =
  with_temp_dir (fun dir ->
      let o =
        run (config dir)
          [
            {
              (request ()) with
              Serve.Request.rq_source = None;
              rq_bench = Some "no-such-benchmark";
            };
          ]
      in
      let r = List.hd o.Serve.Service.so_responses in
      check_bool "status error" true
        (r.Serve.Request.rs_status = Serve.Request.Serror);
      match r.Serve.Request.rs_payload with
      | Serve.Request.Failure { err_class; _ } ->
        check_string "typed bad-request" "bad-request" err_class
      | Serve.Request.Result _ -> Alcotest.fail "expected a failure payload")

let () =
  Random.self_init ();
  Alcotest.run "serve"
    [
      ( "cache",
        [
          Alcotest.test_case "store/find roundtrip with stats" `Quick
            cache_roundtrip;
          Alcotest.test_case "fingerprint keeps part boundaries" `Quick
            fingerprint_is_boundary_safe;
          Alcotest.test_case "corrupt entry quarantined on read" `Quick
            corrupt_entry_quarantined_on_read;
          Alcotest.test_case "startup quarantines and sweeps" `Quick
            startup_validation_quarantines;
          Alcotest.test_case "kill mid-write leaves no trace" `Quick
            kill_mid_write_is_invisible;
        ] );
      ( "service",
        [
          (* Must stay first: see the ordering constraint on the test. *)
          Alcotest.test_case "killed cache write: warm rerun byte-identical"
            `Quick service_recovers_from_killed_cache_write;
          Alcotest.test_case "overload sheds with typed responses" `Quick
            overload_sheds_typed;
          Alcotest.test_case "slow job trips the deadline" `Quick
            slow_job_hits_deadline;
          Alcotest.test_case "transient fault absorbed by retry" `Quick
            transient_fault_absorbed_by_retry;
          Alcotest.test_case "persistent fault degrades to LKG" `Quick
            persistent_fault_degrades_to_lkg;
          Alcotest.test_case "no LKG means a typed error" `Quick
            without_lkg_fault_is_typed_error;
          Alcotest.test_case "corrupt entry: warm rerun byte-identical" `Quick
            service_recovers_from_corrupt_entry;
          Alcotest.test_case "bad request is typed" `Quick bad_request_is_typed;
        ] );
    ]
