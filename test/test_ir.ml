(* IR tests: layout, lowering (validated by executing lowered programs),
   instruction metadata, pretty printer. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let run_src ?(input = [||]) src =
  let prog = Ir.Lower.compile_source src in
  let code = Runtime.Code.of_prog prog in
  let mem = Runtime.Memory.create () in
  Runtime.Thread.run_sequential code ~input mem

let check_output name src expected =
  Alcotest.(check (list int)) name expected (run_src src)

(* ------------------------------------------------------------------ *)
(* Layout                                                              *)
(* ------------------------------------------------------------------ *)

let layout_offsets () =
  let tp =
    Lang.Sema.check_source
      "struct s { int a; int b; s* next; } s g; s arr[4]; int x = 7; void \
       main() {}"
  in
  let layout = Ir.Layout.build tp in
  check_int "struct size" 3 (Ir.Layout.sizeof layout (Lang.Ast.Tstruct "s"));
  check_int "field a" 0 (Ir.Layout.field_offset layout "s" "a");
  check_int "field next" 2 (Ir.Layout.field_offset layout "s" "next");
  let base = Ir.Layout.globals_base in
  check_int "g addr" base (Ir.Layout.global_addr layout "g");
  check_int "arr addr" (base + 3) (Ir.Layout.global_addr layout "arr");
  check_int "x addr" (base + 3 + 12) (Ir.Layout.global_addr layout "x");
  check_int "extent" 16 (Ir.Layout.globals_extent layout);
  check_bool "init" true
    (List.mem (base + 15, 7) (Ir.Layout.initial_stores layout));
  Alcotest.(check string) "describe" "arr+5"
    (Ir.Layout.describe_addr layout (base + 8))

(* ------------------------------------------------------------------ *)
(* Lowering, validated by execution                                    *)
(* ------------------------------------------------------------------ *)

let lower_arith () =
  check_output "arith"
    "void main() { print(2 + 3 * 4); print(10 / 3); print(10 % 3); print(1 \
     << 4); print(-7 >> 1); print(6 & 3); print(6 | 3); print(6 ^ 3); }"
    [ 14; 3; 1; 16; -4; 2; 7; 5 ]

let lower_compare () =
  check_output "compare"
    "void main() { print(1 < 2); print(2 <= 1); print(3 == 3); print(3 != \
     3); print(2 > 1); print(1 >= 2); }"
    [ 1; 0; 1; 0; 1; 0 ]

let lower_short_circuit () =
  (* Side effects prove evaluation order: the right operand must not run
     when the left decides. *)
  check_output "short circuit"
    "int calls = 0;\n\
     int bump(int v) { calls = calls + 1; return v; }\n\
     void main() {\n\
    \  print(0 && bump(1)); print(calls);\n\
    \  print(1 || bump(1)); print(calls);\n\
    \  print(1 && bump(2)); print(calls);\n\
    \  print(0 || bump(0)); print(calls);\n\
     }"
    [ 0; 0; 1; 0; 1; 1; 0; 2 ]

let lower_control () =
  check_output "loops and branches"
    "void main() {\n\
    \  int i; int acc;\n\
    \  acc = 0;\n\
    \  for (i = 0; i < 10; i = i + 1) {\n\
    \    if (i == 3) continue;\n\
    \    if (i == 7) break;\n\
    \    acc = acc + i;\n\
    \  }\n\
    \  print(acc);\n\
    \  while (acc > 10) acc = acc - 10;\n\
    \  print(acc);\n\
    \  do { acc = acc - 1; } while (acc > 0);\n\
    \  print(acc);\n\
     }"
    [ 18; 8; 0 ]

let lower_pointers () =
  check_output "pointer chase"
    "struct node { int v; node* next; }\n\
     node pool[3];\n\
     void main() {\n\
    \  node* p;\n\
    \  pool[0].v = 10; pool[0].next = &pool[1];\n\
    \  pool[1].v = 20; pool[1].next = &pool[2];\n\
    \  pool[2].v = 30; pool[2].next = null;\n\
    \  p = &pool[0];\n\
    \  while (p != null) { print(p->v); p = p->next; }\n\
     }"
    [ 10; 20; 30 ]

let lower_pointer_arith () =
  check_output "scaled pointer arithmetic"
    "struct s { int a; int b; }\n\
     s arr[3];\n\
     int flat[6];\n\
     void main() {\n\
    \  s* p;\n\
    \  int* q;\n\
    \  arr[0].a = 1; arr[1].a = 2; arr[2].a = 3;\n\
    \  p = &arr[0];\n\
    \  p = p + 2;            // skips 2*2 words\n\
    \  print(p->a);\n\
    \  q = flat;\n\
    \  *(q + 3) = 42;\n\
    \  print(flat[3]);\n\
    \  print(*(3 + q));\n\
     }"
    [ 3; 42; 42 ]

let lower_calls () =
  check_output "calls and recursion"
    "int fib(int n) { if (n < 2) return n; return fib(n - 1) + fib(n - 2); }\n\
     void tell(int x) { print(x); }\n\
     void main() { tell(fib(10)); }"
    [ 55 ]

let lower_globals () =
  check_output "global init and updates"
    "int g = 5;\n\
     int h;\n\
     void bump() { g = g + 1; h = h + g; }\n\
     void main() { bump(); bump(); print(g); print(h); }"
    [ 7; 13 ]

let lower_input () =
  Alcotest.(check (list int)) "input"
    [ 3; 30; 20; 0 ]
    (run_src ~input:[| 10; 20; 30 |]
       "void main() { print(inlen()); print(in(2)); print(in(1)); print(in(7)); }")

let lower_div_by_zero () =
  (* Division by zero is defined as 0 in the workload language. *)
  check_output "div by zero" "void main() { int z; z = 0; print(7 / z); print(7 % z); }" [ 0; 0 ]

let lower_uninitialized_locals () =
  check_output "locals read as zero" "void main() { int x; print(x); }" [ 0 ]

(* ------------------------------------------------------------------ *)
(* Instruction metadata                                                *)
(* ------------------------------------------------------------------ *)

let instr_defs_uses () =
  let i kind = { Ir.Instr.iid = 0; kind } in
  check_bool "bin"
    true
    (Ir.Instr.defs (i (Ir.Instr.Bin (Ir.Instr.Add, 3, Ir.Instr.Reg 1, Ir.Instr.Imm 2))) = [ 3 ]
    && Ir.Instr.uses (i (Ir.Instr.Bin (Ir.Instr.Add, 3, Ir.Instr.Reg 1, Ir.Instr.Imm 2))) = [ 1 ]);
  check_bool "store" true
    (Ir.Instr.defs (i (Ir.Instr.Store (Ir.Instr.Reg 1, Ir.Instr.Reg 2))) = []
    && Ir.Instr.uses (i (Ir.Instr.Store (Ir.Instr.Reg 1, Ir.Instr.Reg 2))) = [ 1; 2 ]);
  check_bool "call" true
    (Ir.Instr.defs (i (Ir.Instr.Call (Some 5, "f", [ Ir.Instr.Reg 1 ]))) = [ 5 ]);
  check_bool "wait defines" true
    (Ir.Instr.defs (i (Ir.Instr.Wait_scalar (0, 4))) = [ 4 ]);
  check_bool "memory access" true
    (Ir.Instr.is_memory_access (i (Ir.Instr.Sync_load (0, 1, Ir.Instr.Imm 0))));
  check_bool "successors" true
    (Ir.Instr.successors (Ir.Instr.Br (Ir.Instr.Imm 1, 2, 2)) = [ 2 ])

let unique_iids () =
  let prog =
    Ir.Lower.compile_source
      "int g; int f(int x) { return x * 2; } void main() { g = f(3); }"
  in
  let seen = Hashtbl.create 64 in
  List.iter
    (fun (_, f) ->
      Ir.Func.iter_instrs f (fun _ i ->
          check_bool "iid unique" false (Hashtbl.mem seen i.Ir.Instr.iid);
          Hashtbl.replace seen i.Ir.Instr.iid ()))
    prog.Ir.Prog.funcs

let lowering_deterministic () =
  let src = "int g; void main() { int i; for (i = 0; i < 3; i = i + 1) { g = g + i; } print(g); }" in
  let a = Ir.Pp.program (Ir.Lower.compile_source src) in
  let b = Ir.Pp.program (Ir.Lower.compile_source src) in
  Alcotest.(check string) "same IR text" a b

let contains ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec loop i = i + n <= h && (String.sub haystack i n = needle || loop (i + 1)) in
  n = 0 || loop 0

let pp_smoke () =
  let prog = Ir.Lower.compile_source "void main() { print(1); }" in
  let text = Ir.Pp.program prog in
  check_bool "mentions main" true (contains ~needle:"main" text);
  check_bool "mentions print" true (contains ~needle:"print" text)

(* Property: integer expressions lower to code computing the same value as
   direct evaluation. *)
let arith_matches_eval =
  let gen =
    QCheck.Gen.(
      sized @@ fix (fun self n ->
          if n <= 0 then map (fun v -> `Lit (v mod 1000)) small_int
          else
            oneof
              [
                map (fun v -> `Lit (v mod 1000)) small_int;
                map2 (fun a b -> `Add (a, b)) (self (n / 2)) (self (n / 2));
                map2 (fun a b -> `Sub (a, b)) (self (n / 2)) (self (n / 2));
                map2 (fun a b -> `Mul (a, b)) (self (n / 2)) (self (n / 2));
                map2 (fun a b -> `Xor (a, b)) (self (n / 2)) (self (n / 2));
              ]))
  in
  let rec to_src = function
    | `Lit v -> string_of_int v
    | `Add (a, b) -> Printf.sprintf "(%s + %s)" (to_src a) (to_src b)
    | `Sub (a, b) -> Printf.sprintf "(%s - %s)" (to_src a) (to_src b)
    | `Mul (a, b) -> Printf.sprintf "(%s * %s)" (to_src a) (to_src b)
    | `Xor (a, b) -> Printf.sprintf "(%s ^ %s)" (to_src a) (to_src b)
  in
  let rec eval = function
    | `Lit v -> v
    | `Add (a, b) -> eval a + eval b
    | `Sub (a, b) -> eval a - eval b
    | `Mul (a, b) -> eval a * eval b
    | `Xor (a, b) -> eval a lxor eval b
  in
  QCheck.Test.make ~name:"lowered arithmetic matches direct evaluation"
    ~count:100
    (QCheck.make ~print:to_src gen)
    (fun e ->
      run_src (Printf.sprintf "void main() { print(%s); }" (to_src e))
      = [ eval e ])

(* ------------------------------------------------------------------ *)
(* Optimizer and verifier                                              *)
(* ------------------------------------------------------------------ *)

let opt_preserves name src input =
  let reference = run_src ~input src in
  let prog = Ir.Lower.compile_source src in
  let simplified = Ir.Opt.run prog in
  Ir.Verify.check_exn prog;
  let code = Runtime.Code.of_prog prog in
  let mem = Runtime.Memory.create () in
  let optimized = Runtime.Thread.run_sequential code ~input mem in
  Alcotest.(check (list int)) (name ^ ": semantics preserved") reference optimized;
  simplified

let opt_semantics () =
  let n1 =
    opt_preserves "folding"
      "void main() { print(2 + 3 * 4); print((1 << 6) - 1); }" [||]
  in
  check_bool "folded something" true (n1 > 0);
  ignore
    (opt_preserves "control"
       "int g; void main() { int i; for (i = 0; i < 9; i = i + 1) { if (i % 2 \
        == 0) { g = g + i * 2; } } print(g); }"
       [||]);
  ignore
    (opt_preserves "calls and memory"
       "int a[16]; int f(int x) { return x * 3 + 1; } void main() { int i; \
        for (i = 0; i < 16; i = i + 1) { a[i] = f(i); } print(a[7]); }"
       [||]);
  ignore
    (opt_preserves "input" "void main() { print(in(0) + in(1) * 0); }"
       [| 5; 9 |])

let opt_folds_constants () =
  let prog = Ir.Lower.compile_source "void main() { print(2 + 3 * 4); }" in
  let before = Ir.Prog.static_size prog in
  ignore (Ir.Opt.run prog);
  let after = Ir.Prog.static_size prog in
  check_bool "smaller" true (after < before);
  (* The remaining print argument must be an immediate. *)
  let f = Ir.Prog.func prog "main" in
  let found = ref false in
  Ir.Func.iter_instrs f (fun _ i ->
      match i.Ir.Instr.kind with
      | Ir.Instr.Print (Ir.Instr.Imm 14) -> found := true
      | _ -> ());
  check_bool "print of folded constant" true !found

let opt_dce_keeps_effects () =
  let prog =
    Ir.Lower.compile_source
      "int g; void main() { int dead; dead = 3 * 7; g = 5; print(g); }"
  in
  ignore (Ir.Opt.run prog);
  let f = Ir.Prog.func prog "main" in
  let stores = ref 0 and prints = ref 0 in
  Ir.Func.iter_instrs f (fun _ i ->
      match i.Ir.Instr.kind with
      | Ir.Instr.Store _ -> incr stores
      | Ir.Instr.Print _ -> incr prints
      | _ -> ());
  check_int "store kept" 1 !stores;
  check_int "print kept" 1 !prints



let verify_catches_bad_register () =
  let f = Ir.Func.create "broken" [] in
  let entry = Ir.Func.add_block f in
  (Ir.Func.block f entry).Ir.Func.instrs <-
    [ { Ir.Instr.iid = 0; kind = Ir.Instr.Mov (7, Ir.Instr.Imm 1) } ];
  check_bool "invalid reg reported" true (Ir.Verify.func f <> [])

let verify_catches_bad_label () =
  let f = Ir.Func.create "broken" [] in
  let entry = Ir.Func.add_block f in
  (Ir.Func.block f entry).Ir.Func.term <- Ir.Instr.Jmp 9;
  check_bool "invalid label reported" true (Ir.Verify.func f <> [])

let has_violation sub errs =
  let contains s =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  List.exists contains errs

let verify_catches_negative_channel () =
  let f = Ir.Func.create "broken" [] in
  let entry = Ir.Func.add_block f in
  (Ir.Func.block f entry).Ir.Func.instrs <-
    [ { Ir.Instr.iid = 0; kind = Ir.Instr.Wait_mem (-1) } ];
  check_bool "negative channel reported" true
    (has_violation "uses negative channel c-1" (Ir.Verify.func f))

let verify_catches_unallocated_channel () =
  let prog = Ir.Lower.compile_source "void main() { print(1); }" in
  let f = Ir.Prog.func prog "main" in
  (* No channels were ever allocated, so c5 is out of range. *)
  let b = Ir.Func.block f 0 in
  b.Ir.Func.instrs <-
    {
      Ir.Instr.iid = Ir.Prog.fresh_iid prog ~in_func:"main" ~what:"sig";
      kind = Ir.Instr.Signal_scalar (5, Ir.Instr.Imm 1);
    }
    :: b.Ir.Func.instrs;
  check_bool "unallocated channel reported" true
    (has_violation "uses unallocated channel c5" (Ir.Verify.program prog))

let verify_catches_groupless_sync_load () =
  let prog = Ir.Lower.compile_source "int g; void main() { print(g); }" in
  let f = Ir.Prog.func prog "main" in
  (* An allocated channel, but no region declares a memory group for it. *)
  let ch = Ir.Prog.fresh_channel prog in
  Array.iter
    (fun (b : Ir.Func.block) ->
      b.Ir.Func.instrs <-
        List.map
          (fun (i : Ir.Instr.t) ->
            match i.Ir.Instr.kind with
            | Ir.Instr.Load (d, a) ->
              { i with Ir.Instr.kind = Ir.Instr.Sync_load (ch, d, a) }
            | _ -> i)
          b.Ir.Func.instrs)
    f.Ir.Func.blocks;
  check_bool "groupless checked load reported" true
    (has_violation "has no memory-sync group" (Ir.Verify.program prog))

let verify_catches_dangling_call () =
  let prog = Ir.Lower.compile_source "void main() { print(1); }" in
  let f = Ir.Prog.func prog "main" in
  let b = Ir.Func.block f 0 in
  b.Ir.Func.instrs <-
    b.Ir.Func.instrs
    @ [
        {
          Ir.Instr.iid = Ir.Prog.fresh_iid prog ~in_func:"main" ~what:"call";
          kind = Ir.Instr.Call (None, "nowhere", []);
        };
      ];
  check_bool "dangling call reported" true
    (has_violation "call to undefined function nowhere"
       (Ir.Verify.program prog))

let verify_catches_duplicate_iid () =
  let prog =
    Ir.Lower.compile_source "int g; void main() { g = 1; g = 2; print(g); }"
  in
  let f = Ir.Prog.func prog "main" in
  Array.iter
    (fun (b : Ir.Func.block) ->
      b.Ir.Func.instrs <-
        List.map (fun (i : Ir.Instr.t) -> { i with Ir.Instr.iid = 0 })
          b.Ir.Func.instrs)
    f.Ir.Func.blocks;
  check_bool "duplicate iid reported" true
    (has_violation "duplicate instruction id" (Ir.Verify.program prog))

let verify_accepts_lowered () =
  let prog =
    Ir.Lower.compile_source
      "int g; int f(int x) { return x + g; } void main() { g = f(2); print(g); }"
  in
  Alcotest.(check (list string)) "clean" [] (Ir.Verify.program prog)

let () =
  Alcotest.run "ir"
    [
      ("layout", [ Alcotest.test_case "offsets" `Quick layout_offsets ]);
      ( "lowering",
        [
          Alcotest.test_case "arith" `Quick lower_arith;
          Alcotest.test_case "compare" `Quick lower_compare;
          Alcotest.test_case "short circuit" `Quick lower_short_circuit;
          Alcotest.test_case "control" `Quick lower_control;
          Alcotest.test_case "pointers" `Quick lower_pointers;
          Alcotest.test_case "pointer arith" `Quick lower_pointer_arith;
          Alcotest.test_case "calls" `Quick lower_calls;
          Alcotest.test_case "globals" `Quick lower_globals;
          Alcotest.test_case "input" `Quick lower_input;
          Alcotest.test_case "div by zero" `Quick lower_div_by_zero;
          Alcotest.test_case "uninitialized locals" `Quick lower_uninitialized_locals;
          QCheck_alcotest.to_alcotest arith_matches_eval;
        ] );
      ( "optimizer",
        [
          Alcotest.test_case "semantics" `Quick opt_semantics;
          Alcotest.test_case "folds constants" `Quick opt_folds_constants;
          Alcotest.test_case "DCE keeps effects" `Quick opt_dce_keeps_effects;
        ] );
      ( "verifier",
        [
          Alcotest.test_case "bad register" `Quick verify_catches_bad_register;
          Alcotest.test_case "bad label" `Quick verify_catches_bad_label;
          Alcotest.test_case "negative channel" `Quick
            verify_catches_negative_channel;
          Alcotest.test_case "unallocated channel" `Quick
            verify_catches_unallocated_channel;
          Alcotest.test_case "groupless sync load" `Quick
            verify_catches_groupless_sync_load;
          Alcotest.test_case "dangling call" `Quick verify_catches_dangling_call;
          Alcotest.test_case "duplicate iid" `Quick verify_catches_duplicate_iid;
          Alcotest.test_case "accepts lowered" `Quick verify_accepts_lowered;
        ] );
      ( "metadata",
        [
          Alcotest.test_case "defs/uses" `Quick instr_defs_uses;
          Alcotest.test_case "unique iids" `Quick unique_iids;
          Alcotest.test_case "deterministic" `Quick lowering_deterministic;
          Alcotest.test_case "pp smoke" `Quick pp_smoke;
        ] );
    ]
